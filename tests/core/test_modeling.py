"""Modeled-machine-time bridge tests (repro.core.modeling)."""

import pytest

from repro import quick_lj_simulation
from repro.core.modeling import (
    modeled_exchange_time,
    modeled_step_comm_time,
    stack_for_exchange,
)
from repro.md import Stage
from repro.network import MpiStack, UtofuStack


def sim_for(pattern, **kw):
    sim = quick_lj_simulation(cells=(5, 5, 5), ranks=(2, 2, 2), pattern=pattern, **kw)
    sim.setup()
    return sim


class TestStackPairing:
    def test_3stage_runs_on_mpi(self):
        sim = sim_for("3stage")
        assert isinstance(stack_for_exchange(sim.exchange), MpiStack)

    def test_p2p_runs_on_utofu(self):
        sim = sim_for("p2p")
        assert isinstance(stack_for_exchange(sim.exchange), UtofuStack)


class TestModeledTimes:
    def test_p2p_forward_faster_than_3stage(self):
        t3 = modeled_exchange_time(sim_for("3stage").exchange, "forward")
        tp = modeled_exchange_time(sim_for("p2p").exchange, "forward")
        assert tp < t3

    def test_parallel_faster_than_serial_p2p(self):
        tp = modeled_exchange_time(sim_for("p2p").exchange, "forward")
        tf = modeled_exchange_time(sim_for("parallel-p2p").exchange, "forward")
        assert tf < tp

    def test_border_costlier_than_forward(self):
        ex = sim_for("p2p").exchange
        assert modeled_exchange_time(ex, "border") > modeled_exchange_time(
            ex, "forward"
        ) * 0.99

    def test_unknown_phase_rejected(self):
        ex = sim_for("p2p").exchange
        with pytest.raises(ValueError):
            modeled_exchange_time(ex, "teleport")

    def test_step_time_rebuild_costs_more(self):
        ex = sim_for("p2p").exchange
        t_plain = modeled_step_comm_time(ex, rebuild=False)
        t_rebuild = modeled_step_comm_time(ex, rebuild=True)
        assert t_rebuild > t_plain

    def test_newton_off_skips_reverse(self):
        ex = sim_for("p2p").exchange
        with_rev = modeled_step_comm_time(ex, rebuild=False, newton=True)
        without = modeled_step_comm_time(ex, rebuild=False, newton=False)
        assert without < with_rev


class TestSimulationIntegration:
    def test_model_timer_accumulates(self):
        sim = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), pattern="p2p",
            model_machine_time=True,
        )
        sim.run(5)
        assert sim.timers.model[Stage.COMM] > 0

    def test_disabled_by_default(self):
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 2))
        sim.run(3)
        assert sim.timers.total_model() == 0.0

    def test_pattern_ordering_on_same_run(self):
        totals = {}
        for pattern in ("3stage", "p2p", "parallel-p2p"):
            sim = quick_lj_simulation(
                cells=(4, 4, 4), ranks=(2, 2, 2), pattern=pattern,
                model_machine_time=True, seed=77,
            )
            sim.run(10)
            totals[pattern] = sim.timers.model[Stage.COMM]
        assert totals["parallel-p2p"] < totals["p2p"] < totals["3stage"]

    def test_measured_sizes_agree_with_analytic_model(self):
        """The functional route sizes must match the analytic Table 1
        volumes that the perfmodel uses (cross-layer consistency)."""
        from repro.core import analyze_p2p

        sim = quick_lj_simulation(cells=(6, 6, 6), ranks=(2, 2, 2), pattern="p2p")
        sim.setup()
        a = float(sim.domain.sub_lengths[0])
        density = sim.natoms / sim.box.volume
        ana = analyze_p2p(a, sim.exchange.rcomm, density)
        measured = sum(
            r.count for r in sim.exchange.routes[0].sends
        )
        assert measured == pytest.approx(ana.total_atoms, rel=0.25)
