"""Analytic comm model: Table 1 rows and Equations (3)-(8)."""

import pytest

from repro.core import analyze_p2p, analyze_three_stage, timing_model
from repro.core.analytic import TimingModel
from repro.network import MpiStack, UtofuStack


A, R, RHO = 3.0, 1.0, 0.8


class TestTable1Rows:
    def test_three_stage_structure(self):
        ana = analyze_three_stage(A, R, RHO)
        assert ana.total_messages == 6
        assert [c.count for c in ana.classes] == [2, 2, 2]
        assert [c.hops for c in ana.classes] == [1, 1, 1]

    def test_three_stage_total_atoms(self):
        ana = analyze_three_stage(A, R, RHO)
        expect = (8 * R**3 + 12 * A * R**2 + 6 * A**2 * R) * RHO
        assert ana.total_atoms == pytest.approx(expect)

    def test_p2p_structure(self):
        ana = analyze_p2p(A, R, RHO)
        assert ana.total_messages == 13
        assert [c.count for c in ana.classes] == [3, 6, 4]
        assert [c.hops for c in ana.classes] == [1, 2, 3]

    def test_p2p_total_atoms(self):
        ana = analyze_p2p(A, R, RHO)
        expect = (4 * R**3 + 6 * A * R**2 + 3 * A**2 * R) * RHO
        assert ana.total_atoms == pytest.approx(expect)

    def test_p2p_moves_half_the_volume(self):
        """The Newton's-law saving of Table 1."""
        three = analyze_three_stage(A, R, RHO)
        p2p = analyze_p2p(A, R, RHO)
        assert p2p.total_atoms == pytest.approx(three.total_atoms / 2)

    def test_full_shell_p2p(self):
        ana = analyze_p2p(A, R, RHO, newton=False)
        assert ana.total_messages == 26

    def test_bytes_scale_with_atoms(self):
        ana = analyze_p2p(A, R, RHO, bytes_per_atom=24)
        face = ana.classes[0]
        assert face.nbytes == pytest.approx(face.atoms * 24, abs=1.0)

    def test_message_sizes_ordered(self):
        """Faces carry the most, corners the least (Fig. 10 premise)."""
        ana = analyze_p2p(A, R, RHO)
        sizes = [c.nbytes for c in ana.classes]
        assert sizes[0] > sizes[1] > sizes[2]

    def test_65k_system_message_size(self):
        """Paper section 3.3: 65K atoms on 768 nodes -> 22 atoms/rank,
        forward messages at most 528 B."""
        atoms_per_rank = 65536 / (768 * 4)
        a = (atoms_per_rank / 0.8442) ** (1 / 3)
        ana = analyze_p2p(a, 2.8, 0.8442, bytes_per_atom=24)
        assert max(c.nbytes for c in ana.classes) <= 560  # ~528 B


class TestEquations:
    def test_equation_identities(self):
        tm = TimingModel(t_inj=0.1, t_stage=(1.0, 2.0, 3.0), t_p2p=(1.0, 0.5, 0.3))
        assert tm.three_stage_naive == pytest.approx(2 * (1 + 2 + 3))
        assert tm.p2p_naive == pytest.approx(12 * 0.1 + 1.0)
        assert tm.three_stage_opt == pytest.approx(3 * 0.1 + 6.0)
        assert tm.p2p_opt == pytest.approx(12 * 0.1 + 0.3)
        assert tm.three_stage_parallel == pytest.approx(6.0)
        assert tm.p2p_parallel == pytest.approx(2 * 0.1 + 0.3)

    def test_parallel_always_fastest_per_pattern(self):
        tm = timing_model(A, R, RHO)
        assert tm.three_stage_parallel <= tm.three_stage_opt <= tm.three_stage_naive
        assert tm.p2p_parallel <= tm.p2p_opt <= tm.p2p_naive

    def test_paper_conclusion_utofu(self):
        """Section 3.1: with uTofu's tiny T_inj and T3 = T0, parallel p2p
        beats parallel 3-stage."""
        tm = timing_model(A, R, RHO, stack=UtofuStack())
        assert tm.p2p_parallel < tm.three_stage_parallel
        # T3 (p2p face) equals T0 (3-stage face): same size, same hop.
        assert tm.t_p2p[0] == pytest.approx(tm.t_stage[0])

    def test_naive_p2p_loses_under_mpi(self):
        """The Fig. 6 MPI result: 12 extra T_inj sink the naive p2p."""
        tm = timing_model(A, R, RHO, stack=MpiStack())
        assert tm.p2p_naive > tm.three_stage_opt

    def test_as_dict_keys(self):
        d = timing_model(A, R, RHO).as_dict()
        assert set(d) == {
            "3stage-naive",
            "p2p-naive",
            "3stage-opt",
            "p2p-opt",
            "3stage-parallel",
            "p2p-parallel",
        }
        assert all(v > 0 for v in d.values())
