"""Pattern definitions: neighbor sets, hop counts, message counts."""

import pytest

from repro.core import (
    CommPattern,
    half_shell_offsets,
    lex_positive,
    message_count,
    offset_hops,
    p2p_neighbors,
    shell_offsets,
    three_stage_swaps,
)


class TestShellOffsets:
    def test_radius1_counts(self):
        assert len(shell_offsets(1)) == 26
        assert len(half_shell_offsets(1)) == 13

    def test_radius2_counts(self):
        """Fig. 15's extended scenarios: 124 full / 62 half neighbors."""
        assert len(shell_offsets(2)) == 124
        assert len(half_shell_offsets(2)) == 62

    def test_no_zero_offset(self):
        assert (0, 0, 0) not in shell_offsets(2)

    def test_half_shell_is_antisymmetric(self):
        half = set(half_shell_offsets(1))
        for o in half:
            assert tuple(-v for v in o) not in half

    def test_half_plus_mirror_is_full(self):
        half = half_shell_offsets(2)
        mirrored = [tuple(-v for v in o) for o in half]
        assert sorted(half + mirrored) == sorted(shell_offsets(2))

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            shell_offsets(0)


class TestLexRule:
    def test_positive_examples(self):
        assert lex_positive((0, 0, 1))
        assert not lex_positive((0, 1, -1))  # (z, y, x) = (-1, 1, 0) < 0

    def test_ordering_is_z_then_y_then_x(self):
        assert lex_positive((1, 0, 0))  # (0,0,1) > 0 via x
        assert lex_positive((0, 1, 0))
        assert lex_positive((-1, 1, 0))  # y dominates x
        assert not lex_positive((1, -1, 0))  # y negative dominates
        assert not lex_positive((0, 0, -1))
        assert lex_positive((1, 1, 1))


class TestP2PNeighbors:
    def test_table1_classes(self):
        """Table 1's p2p block: 3 faces @1 hop, 6 edges @2, 4 corners @3."""
        specs = p2p_neighbors(newton=True, radius=1)
        by_kind = {}
        for s in specs:
            by_kind.setdefault((s.kind, s.hops), []).append(s)
        assert len(by_kind[("face", 1)]) == 3
        assert len(by_kind[("edge", 2)]) == 6
        assert len(by_kind[("corner", 3)]) == 4

    def test_full_shell_classes(self):
        specs = p2p_neighbors(newton=False, radius=1)
        assert len(specs) == 26
        kinds = [s.kind for s in specs]
        assert kinds.count("face") == 6
        assert kinds.count("edge") == 12
        assert kinds.count("corner") == 8

    def test_hops_are_l1_norm(self):
        assert offset_hops((1, 0, 0)) == 1
        assert offset_hops((1, -1, 0)) == 2
        assert offset_hops((-2, 1, 2)) == 5


class TestThreeStageSwaps:
    def test_six_swaps_radius1(self):
        swaps = three_stage_swaps(1)
        assert len(swaps) == 6
        assert [s.dim for s in swaps] == [0, 0, 1, 1, 2, 2]

    def test_linear_growth_with_radius(self):
        """The Fig. 15 asymmetry: 3-stage messages grow linearly (6 -> 12)
        while p2p grows ~quadratically (26 -> 124)."""
        assert len(three_stage_swaps(2)) == 12
        assert message_count(CommPattern.THREE_STAGE, radius=2) == 12
        assert message_count(CommPattern.P2P, newton=False, radius=2) == 124

    def test_directions_alternate(self):
        swaps = three_stage_swaps(1)
        assert [s.dir for s in swaps] == [1, -1, 1, -1, 1, -1]


class TestMessageCounts:
    def test_table1_message_counts(self):
        assert message_count(CommPattern.THREE_STAGE) == 6
        assert message_count(CommPattern.P2P, newton=True) == 13
        assert message_count(CommPattern.P2P, newton=False) == 26

    def test_fig15_scenarios(self):
        assert message_count(CommPattern.P2P, newton=True, radius=2) == 62
        assert message_count(CommPattern.P2P, newton=False, radius=2) == 124
