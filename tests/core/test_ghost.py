"""Ghost-region geometry (Table 1) incl. Monte-Carlo cross-check."""

import numpy as np
import pytest

from repro.core import (
    GhostBudget,
    corner_volume,
    edge_volume,
    face_volume,
    full_shell_volume,
    half_shell_volume,
    offset_volume,
    stage_volumes,
)
from repro.core.patterns import half_shell_offsets, shell_offsets


class TestClosedForms:
    def test_table1_totals(self):
        a, r = 3.0, 1.0
        assert full_shell_volume(a, r) == pytest.approx(
            6 * a * a * r + 12 * a * r * r + 8 * r**3
        )
        assert half_shell_volume(a, r) == pytest.approx(
            3 * a * a * r + 6 * a * r * r + 4 * r**3
        )

    def test_full_shell_is_slab_difference(self):
        a, r = 4.2, 1.7
        assert full_shell_volume(a, r) == pytest.approx((a + 2 * r) ** 3 - a**3)

    def test_half_is_exactly_half(self):
        a, r = 5.0, 2.2
        assert half_shell_volume(a, r) == pytest.approx(full_shell_volume(a, r) / 2)

    def test_stage_volumes_match_table1(self):
        a, r = 3.0, 1.0
        s1, s2, s3 = stage_volumes(a, r)
        assert s1 == pytest.approx(a * a * r)
        assert s2 == pytest.approx(a * a * r + 2 * a * r * r)
        assert s3 == pytest.approx((a + 2 * r) ** 2 * r)

    def test_stage_volumes_sum_to_full_shell(self):
        """2 x (s1 + s2 + s3) must equal the full shell (6 messages)."""
        a, r = 3.7, 1.3
        assert 2 * sum(stage_volumes(a, r)) == pytest.approx(full_shell_volume(a, r))

    def test_offset_volumes_sum_to_shells(self):
        a, r = 3.0, 1.2
        full = sum(offset_volume(a, r, o) for o in shell_offsets(1))
        half = sum(offset_volume(a, r, o) for o in half_shell_offsets(1))
        assert full == pytest.approx(full_shell_volume(a, r))
        assert half == pytest.approx(half_shell_volume(a, r))

    def test_offset_volume_classes(self):
        a, r = 3.0, 1.0
        assert offset_volume(a, r, (1, 0, 0)) == pytest.approx(face_volume(a, r))
        assert offset_volume(a, r, (1, -1, 0)) == pytest.approx(edge_volume(a, r))
        assert offset_volume(a, r, (1, 1, 1)) == pytest.approx(corner_volume(a, r))

    def test_radius2_offsets_empty_for_short_cutoff(self):
        assert offset_volume(3.0, 1.0, (2, 0, 0)) == 0.0

    def test_radius2_offsets_for_long_cutoff(self):
        # r = 4 > a = 3: depth into the second shell is 1.
        assert offset_volume(3.0, 4.0, (2, 0, 0)) == pytest.approx(3 * 3 * 1.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            face_volume(0.0, 1.0)
        with pytest.raises(ValueError):
            full_shell_volume(1.0, -1.0)


class TestMonteCarlo:
    def test_shell_volume_against_sampling(self):
        """Voxel-count the shell around a unit sub-box and compare."""
        a, r = 1.0, 0.3
        rng = np.random.default_rng(11)
        lo, hi = -r, a + r
        pts = rng.uniform(lo, hi, size=(400_000, 3))
        inside_slab = np.all((pts >= -r) & (pts < a + r), axis=1)
        inside_box = np.all((pts >= 0) & (pts < a), axis=1)
        frac = (inside_slab & ~inside_box).mean()
        measured = frac * (a + 2 * r) ** 3
        assert measured == pytest.approx(full_shell_volume(a, r), rel=0.02)


class TestGhostBudget:
    def test_max_ghosts_scales_with_density(self):
        lo = GhostBudget(a=3.0, r=1.0, density=0.5)
        hi = GhostBudget(a=3.0, r=1.0, density=1.0)
        assert hi.max_ghost_atoms(True) > lo.max_ghost_atoms(True)

    def test_full_shell_bigger_than_half(self):
        b = GhostBudget(a=3.0, r=1.0, density=1.0)
        assert b.max_ghost_atoms(True) > b.max_ghost_atoms(False)

    def test_budget_covers_actual_lattice_ghosts(self):
        """The pre-sizing guarantee: a real run's ghost count stays under
        the theoretical maximum."""
        from repro import quick_lj_simulation

        sim = quick_lj_simulation(cells=(6, 6, 6), ranks=(2, 2, 2), pattern="p2p")
        sim.setup()
        a = float(sim.domain.sub_lengths.min())
        density = sim.natoms / sim.box.volume
        budget = GhostBudget(a=a, r=sim.exchange.rcomm, density=density)
        for rank in range(8):
            assert sim.atoms_of(rank).nghost <= budget.max_ghost_atoms(False)

    def test_message_bound_is_stage3_slab(self):
        b = GhostBudget(a=3.0, r=1.0, density=1.0, safety=1.0)
        assert b.max_atoms_per_message() >= (3 + 2) ** 2 * 1.0

    def test_local_bound(self):
        b = GhostBudget(a=3.0, r=1.0, density=2.0, safety=1.0)
        assert b.max_local_atoms() >= 54
