"""Cross-checks of measured exchange traffic against Table 1's formulas,
plus failure-injection tests showing the checks would catch corruption."""

import numpy as np
import pytest

from repro import LennardJones, SerialReference, quick_lj_simulation
from repro.core.ghost import stage_volumes
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities


class TestThreeStageTrafficShape:
    """The 3-stage message sizes must follow a^2 r < a^2 r + 2 a r^2 <
    (a + 2r)^2 r — stage growth from forwarding (Table 1 upper block)."""

    @pytest.fixture(scope="class")
    def sim(self):
        sim = quick_lj_simulation(
            cells=(10, 10, 10), ranks=(2, 2, 2), pattern="3stage", seed=99
        )
        sim.setup()
        return sim

    def test_stage_sizes_grow(self, sim):
        routes = sim.exchange.routes[0].sends
        counts = [r.count for r in routes]
        # swaps: x+, x-, y+, y-, z+, z-
        x_avg = (counts[0] + counts[1]) / 2
        y_avg = (counts[2] + counts[3]) / 2
        z_avg = (counts[4] + counts[5]) / 2
        assert x_avg < y_avg < z_avg

    def test_stage_sizes_match_formulas(self, sim):
        a = float(sim.domain.sub_lengths[0])
        r = sim.exchange.rcomm
        density = sim.natoms / sim.box.volume
        s1, s2, s3 = (v * density for v in stage_volumes(a, r))
        routes = sim.exchange.routes[0].sends
        counts = [r_.count for r_ in routes]
        assert (counts[0] + counts[1]) / 2 == pytest.approx(s1, rel=0.15)
        assert (counts[2] + counts[3]) / 2 == pytest.approx(s2, rel=0.15)
        assert (counts[4] + counts[5]) / 2 == pytest.approx(s3, rel=0.15)

    def test_total_ghosts_match_full_shell(self, sim):
        from repro.core.ghost import full_shell_volume

        a = float(sim.domain.sub_lengths[0])
        density = sim.natoms / sim.box.volume
        expected = full_shell_volume(a, sim.exchange.rcomm) * density
        measured = np.mean([sim.atoms_of(r).nghost for r in range(8)])
        assert measured == pytest.approx(expected, rel=0.1)


class TestFailureInjection:
    """Corrupting communicated data must be *observable* — the physics
    checks these tests rely on elsewhere genuinely have teeth."""

    def _fresh_pair(self, seed=123):
        edge = lj_density_to_cell(0.8442)
        x, box = fcc_lattice((4, 4, 4), edge)
        v = maxwell_velocities(x.shape[0], 1.44, seed=seed)
        ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 2), seed=seed)
        return sim, ref

    def test_ghost_position_corruption_changes_forces(self):
        sim, ref = self._fresh_pair()
        sim.setup()
        atoms = sim.atoms_of(0)
        atoms.x[atoms.nlocal][:] += 0.05  # corrupt one ghost
        sim._compute_forces()
        assert np.abs(sim.gather_forces() - ref.f).max() > 1e-3

    def test_dropped_reverse_breaks_newton(self):
        """Skipping the reverse stage loses ghost forces: total force no
        longer sums to zero."""
        sim, _ = self._fresh_pair(seed=124)
        sim.setup()
        # melt a bit so forces are nonzero
        sim.run(5)
        # recompute forces but skip the reverse comm
        for rank in range(8):
            sim.atoms_of(rank).zero_forces()
        pot = sim.potential
        for rank in range(8):
            nl = sim.neigh_of(rank)
            pot.compute(sim.atoms_of(rank), nl.pair_i, nl.pair_j, half_list=True)
        total = np.zeros(3)
        for rank in range(8):
            total += sim.atoms_of(rank).f_local().sum(axis=0)
        assert np.abs(total).max() > 1e-6  # ghost forces stranded

    def test_wrong_shift_detected_by_pressure(self):
        """Applying a wrong PBC shift to one border route shifts ghost
        images and visibly changes the pressure."""
        sim, _ = self._fresh_pair(seed=125)
        sim.setup()
        p_good = sim.sample_thermo().pressure
        route = sim.exchange.routes[0].sends[0]
        route.shift[:] += 0.5  # sabotage one route's shift
        # The exchange snapshots routes into its comm plan at borders
        # time; a route mutated behind its back needs a plan rebuild.
        sim.exchange._invalidate_plans()
        sim.exchange.forward()  # replays routes -> ghosts move wrongly
        sim._compute_forces()
        p_bad = sim.sample_thermo().pressure
        assert abs(p_bad - p_good) > 1e-6

    def test_truncated_payload_raises(self):
        """A short reverse payload is a protocol error, not silence."""
        sim, _ = self._fresh_pair(seed=126)
        sim.setup()
        # Shrink one send route after borders: replay disagrees on size.
        route = sim.exchange.routes[0].sends[0]
        if route.send_idx.size > 1:
            route.send_idx = route.send_idx[:-1]
            sim.exchange._invalidate_plans()
            with pytest.raises(Exception):
                sim.exchange.forward()
