"""RDMA registration / put / get semantics."""

import numpy as np
import pytest

from repro.machine import RdmaEngine
from repro.machine.rdma import RdmaError


@pytest.fixture
def engine():
    return RdmaEngine()


class TestRegistration:
    def test_register_returns_region_with_stag(self, engine):
        data = np.zeros(16)
        region = engine.cache_for(0).register(data)
        assert region.stag > 0
        assert region.length == 16

    def test_stags_unique_across_ranks(self, engine):
        r0 = engine.cache_for(0).register(np.zeros(4))
        r1 = engine.cache_for(1).register(np.zeros(4))
        assert r0.stag != r1.stag

    def test_registration_cost_accumulates(self, engine):
        cache = engine.cache_for(0)
        cache.register(np.zeros(1024))
        t1 = cache.total_registration_time
        cache.register(np.zeros(1024 * 1024))
        assert cache.total_registration_time > 2 * t1  # bigger buffer, more pages
        assert cache.registration_count == 2

    def test_deregister(self, engine):
        cache = engine.cache_for(0)
        region = cache.register(np.zeros(4))
        cache.deregister(region)
        with pytest.raises(RdmaError):
            cache.lookup(region.stag)

    def test_2d_rejected(self, engine):
        with pytest.raises(RdmaError):
            engine.cache_for(0).register(np.zeros((4, 4)))


class TestPut:
    def test_put_writes_remote_memory(self, engine):
        src = engine.cache_for(0).register(np.arange(8.0))
        dst_arr = np.zeros(8)
        dst = engine.cache_for(1).register(dst_arr)
        engine.put(src, 2, 1, dst.stag, 4, 3)
        assert np.array_equal(dst_arr[4:7], [2.0, 3.0, 4.0])
        assert dst_arr[:4].sum() == 0  # untouched

    def test_put_is_zero_copy_into_target(self, engine):
        """The defining property of section 3.4: the PUT lands in the
        actual array, not a staging buffer."""
        target = np.zeros(6)
        dst = engine.cache_for(1).register(target)
        src = engine.cache_for(0).register(np.ones(6))
        engine.put(src, 0, 1, dst.stag, 0, 6)
        assert target.sum() == 6.0  # the original array object changed

    def test_put_bounds_checked_remote(self, engine):
        src = engine.cache_for(0).register(np.zeros(8))
        dst = engine.cache_for(1).register(np.zeros(4))
        with pytest.raises(RdmaError):
            engine.put(src, 0, 1, dst.stag, 2, 4)

    def test_put_bounds_checked_local(self, engine):
        src = engine.cache_for(0).register(np.zeros(2))
        dst = engine.cache_for(1).register(np.zeros(8))
        with pytest.raises(RdmaError):
            engine.put(src, 0, 1, dst.stag, 0, 4)

    def test_put_unknown_stag(self, engine):
        src = engine.cache_for(0).register(np.zeros(2))
        with pytest.raises(RdmaError):
            engine.put(src, 0, 1, 999999, 0, 1)

    def test_put_counters(self, engine):
        src = engine.cache_for(0).register(np.zeros(8))
        dst = engine.cache_for(1).register(np.zeros(8))
        engine.put(src, 0, 1, dst.stag, 0, 8)
        assert engine.put_count == 1
        assert engine.bytes_put == 64


class TestGet:
    def test_get_reads_remote_memory(self, engine):
        remote = engine.cache_for(1).register(np.arange(10.0))
        local_arr = np.zeros(4)
        local = engine.cache_for(0).register(local_arr)
        engine.get(local, 0, 1, remote.stag, 6, 4)
        assert np.array_equal(local_arr, [6.0, 7.0, 8.0, 9.0])
        assert engine.get_count == 1

    def test_get_bounds_checked(self, engine):
        remote = engine.cache_for(1).register(np.zeros(4))
        local = engine.cache_for(0).register(np.zeros(4))
        with pytest.raises(RdmaError):
            engine.get(local, 0, 1, remote.stag, 2, 4)


class TestAggregates:
    def test_total_registration_time(self, engine):
        engine.cache_for(0).register(np.zeros(100))
        engine.cache_for(1).register(np.zeros(100))
        assert engine.total_registration_time() == pytest.approx(
            2 * engine.cache_for(0).total_registration_time
        )
