"""TNI / CQ / VCQ ownership-rule tests (paper Fig. 7)."""

import pytest

from repro.machine import NodeNIC, TNI
from repro.machine.tni import TNIAllocationError


@pytest.fixture
def nic():
    return NodeNIC()


class TestTNI:
    def test_one_cq_per_rank_per_tni(self):
        tni = TNI(0)
        tni.allocate_cq(rank=0)
        with pytest.raises(TNIAllocationError):
            tni.allocate_cq(rank=0)

    def test_nine_cqs_exhaust(self):
        tni = TNI(0)
        for r in range(9):
            tni.allocate_cq(rank=r)
        with pytest.raises(TNIAllocationError):
            tni.allocate_cq(rank=99)

    def test_owner_tracking(self):
        tni = TNI(0)
        cq = tni.allocate_cq(rank=7)
        assert tni.owner_of(cq.index) == 7
        assert tni.owner_of(8) is None


class TestCoarseBinding:
    def test_four_ranks_four_tnis(self, nic):
        vcqs = nic.bind_coarse([0, 1, 2, 3])
        assert set(vcqs) == {0, 1, 2, 3}
        tnis = {vcqs[r][0].tni for r in range(4)}
        assert tnis == {0, 1, 2, 3}  # distinct TNIs, no contention
        assert nic.cqs_in_use() == 4

    def test_coarse_single_vcq_each(self, nic):
        vcqs = nic.bind_coarse([0, 1, 2, 3])
        assert all(len(v) == 1 for v in vcqs.values())

    def test_limit_tni_count(self, nic):
        vcqs = nic.bind_coarse([0, 1, 2, 3], tni_count=2)
        assert {vcqs[r][0].tni for r in range(4)} == {0, 1}

    def test_invalid_tni_count(self, nic):
        with pytest.raises(TNIAllocationError):
            nic.bind_coarse([0], tni_count=7)


class TestFineBinding:
    def test_24_cqs_for_4_ranks(self, nic):
        """The paper's key count: 4 ranks x 6 TNIs = 24 individual CQs."""
        vcqs = nic.bind_fine([0, 1, 2, 3])
        assert nic.cqs_in_use() == 24
        for r in range(4):
            assert len(vcqs[r]) == 6
            assert [v.tni for v in vcqs[r]] == list(range(6))

    def test_each_thread_owns_distinct_vcq(self, nic):
        vcqs = nic.bind_fine([0])
        threads = [v.thread for v in vcqs[0]]
        assert threads == list(range(6))

    def test_fine_binding_respects_cq_exclusivity(self, nic):
        nic.bind_fine([0])
        with pytest.raises(TNIAllocationError):
            nic.bind_fine([0])  # rank 0 already owns a CQ on every TNI


class TestSingleRankMultiTNI:
    def test_6tni_mode(self, nic):
        vcqs = nic.bind_single_rank_multi_tni(0, 6)
        assert len(vcqs) == 6
        assert all(v.thread == 0 for v in vcqs)  # one thread, many VCQs

    def test_out_of_range(self, nic):
        with pytest.raises(TNIAllocationError):
            nic.bind_single_rank_multi_tni(0, 0)

    def test_vcqs_of_query(self, nic):
        nic.bind_single_rank_multi_tni(3, 4)
        assert len(nic.vcqs_of(3)) == 4
        assert nic.vcqs_of(9) == []


class TestTime:
    def test_reset_time(self, nic):
        nic.tnis[0].busy_until = 5.0
        nic.reset_time()
        assert all(t.busy_until == 0.0 for t in nic.tnis)
