"""A64FX node-model tests: CMG layout and NUMA-clean rank placement."""

import pytest

from repro.machine import A64FX, FUGAKU


@pytest.fixture
def node():
    return A64FX()


class TestLayout:
    def test_four_cmgs(self, node):
        assert len(node.cmgs) == 4

    def test_twelve_compute_cores_per_cmg(self, node):
        for cmg in node.cmgs:
            assert len(cmg.compute_cores) == 12
            assert not any(c.assistant for c in cmg.compute_cores)

    def test_assistant_core_flagged(self, node):
        for cmg in node.cmgs:
            assert cmg.assistant_core.assistant

    def test_total_compute_cores(self, node):
        assert node.compute_core_count == 48

    def test_hbm_per_cmg(self, node):
        assert node.cmgs[0].hbm_bandwidth == pytest.approx(256e9)
        assert node.cmgs[0].hbm_capacity == pytest.approx(8 * 2**30)

    def test_global_core_ids_unique(self, node):
        ids = [c.global_id for cmg in node.cmgs for c in cmg.compute_cores]
        ids += [cmg.assistant_core.global_id for cmg in node.cmgs]
        assert len(set(ids)) == len(ids)


class TestRankPlacement:
    def test_four_ranks_are_numa_local(self, node):
        # The paper's placement argument (section 3.2): 4 ranks = 1 CMG each.
        assert node.numa_local(4)

    def test_each_rank_gets_one_cmg_at_4_ranks(self, node):
        for r in range(4):
            cores = node.cores_for_rank(r, 4)
            assert len(cores) == 12
            assert {c.cmg for c in cores} == {r}

    def test_two_ranks_also_numa_clean(self, node):
        # 2 ranks x 24 cores = 2 CMGs each: spans CMGs, not NUMA-local.
        assert not node.numa_local(2)

    def test_three_ranks_cross_numa(self, node):
        # 48/3 = 16 cores straddles CMG boundaries (the paper's warning).
        assert not node.numa_local(3)

    def test_uneven_rank_count_rejected(self, node):
        with pytest.raises(ValueError):
            node.cores_for_rank(0, 5)

    def test_rank_out_of_range(self, node):
        with pytest.raises(ValueError):
            node.cores_for_rank(4, 4)

    def test_ranks_partition_cores(self, node):
        all_cores = set()
        for r in range(4):
            cores = {c.global_id for c in node.cores_for_rank(r, 4)}
            assert not (all_cores & cores)
            all_cores |= cores
        assert len(all_cores) == 48

    def test_hbm_split_across_ranks(self, node):
        assert node.hbm_capacity_for_rank(4) == pytest.approx(
            FUGAKU.hbm_capacity_per_cmg
        )
