"""Dimension-order routing and the topo-map congestion advantage."""

import random

import pytest

from repro.core import JobShape, TopoMap
from repro.core.patterns import half_shell_offsets
from repro.machine import TofuCoord, TofuTopology
from repro.machine.routing import (
    link_congestion,
    neighbor_traffic_pairs,
    route,
)


@pytest.fixture
def topo():
    return TofuTopology((2, 2, 2))


class TestRoute:
    def test_route_length_equals_hops(self, topo):
        for i in range(0, topo.node_count, 5):
            for j in range(0, topo.node_count, 7):
                a, b = topo.coord_of(i), topo.coord_of(j)
                assert len(route(topo, a, b)) == topo.hops(a, b)

    def test_route_to_self_is_empty(self, topo):
        c = topo.coord_of(3)
        assert route(topo, c, c) == []

    def test_route_links_are_connected(self, topo):
        """Each link starts where the previous one ended."""
        a, b = topo.coord_of(0), topo.coord_of(topo.node_count - 1)
        links = route(topo, a, b)
        current = a
        for link in links:
            assert link.node == current
            vals = list(current.as_tuple())
            vals[link.axis] = (vals[link.axis] + link.direction) % topo.full_shape[
                link.axis
            ]
            current = TofuCoord(*vals)
        assert current == b

    def test_torus_takes_short_way(self):
        topo = TofuTopology((4, 1, 1))
        a = TofuCoord(0, 0, 0, 0, 0, 0)
        b = TofuCoord(3, 0, 0, 0, 0, 0)
        links = route(topo, a, b)
        assert len(links) == 1
        assert links[0].direction == -1  # wraps backwards

    def test_out_of_topology_rejected(self, topo):
        with pytest.raises(ValueError):
            route(topo, TofuCoord(9, 0, 0, 0, 0, 0), topo.coord_of(0))


class TestCongestion:
    def test_empty_report(self, topo):
        rep = link_congestion(topo, [])
        assert rep.max_link_load == 0
        assert rep.mean_hops == 0.0

    def test_disjoint_routes_load_one(self, topo):
        a, b = topo.coord_of(0), topo.coord_of(1)
        c, d = topo.coord_of(10), topo.coord_of(11)
        rep = link_congestion(topo, [(a, b), (c, d)])
        assert rep.max_link_load == 1

    def test_shared_route_counts(self, topo):
        a, b = topo.coord_of(0), topo.coord_of(1)
        rep = link_congestion(topo, [(a, b)] * 5)
        assert rep.max_link_load == 5


class TestTopoMapAdvantage:
    """Section 3.5.3 quantified: the topology-preserving placement beats
    a random placement on both hops and congestion."""

    def _compare(self, job_nodes):
        tm = TopoMap(JobShape(job_nodes))
        offsets = half_shell_offsets(1)
        topo_pairs = neighbor_traffic_pairs(tm, offsets)

        rng = random.Random(7)
        positions = [
            (x, y, z)
            for x in range(tm.rank_grid[0])
            for y in range(tm.rank_grid[1])
            for z in range(tm.rank_grid[2])
        ]
        shuffled = positions[:]
        rng.shuffle(shuffled)
        placement = dict(zip(positions, shuffled))
        random_pairs = neighbor_traffic_pairs(tm, offsets, placement)

        mapped = link_congestion(tm.topology, topo_pairs)
        randomized = link_congestion(tm.topology, random_pairs)
        return mapped, randomized

    def test_topo_map_reduces_mean_hops(self):
        mapped, randomized = self._compare((4, 6, 4))
        assert mapped.mean_hops < 0.7 * randomized.mean_hops

    def test_topo_map_reduces_total_traffic(self):
        mapped, randomized = self._compare((4, 6, 4))
        assert mapped.total_link_traversals < randomized.total_link_traversals

    def test_topo_map_keeps_many_pairs_on_node(self):
        """With the 2x2x1 brick, several of the 13 neighbors are
        co-located and never touch the network."""
        tm = TopoMap(JobShape((4, 6, 4)))
        offsets = half_shell_offsets(1)
        pairs = neighbor_traffic_pairs(tm, offsets)
        total_sends = tm.rank_grid[0] * tm.rank_grid[1] * tm.rank_grid[2] * 13
        assert len(pairs) < total_sends  # some stayed on-node
