"""TofuD 6D torus geometry tests."""

import pytest

from repro.machine import TofuCoord, TofuTopology, TOFU_CELL_SHAPE


@pytest.fixture
def topo():
    return TofuTopology((3, 2, 2))


class TestShape:
    def test_cell_shape_is_2x3x2(self):
        assert TOFU_CELL_SHAPE == (2, 3, 2)

    def test_node_count(self, topo):
        assert topo.node_count == 3 * 2 * 2 * 12

    def test_virtual_shape_folds_cells(self, topo):
        assert topo.virtual_shape == (6, 6, 4)

    def test_fugaku_scale_shelf_units(self):
        # The paper's 36864-node job is a 32x36x32 virtual block; the
        # machine grid must be able to host it.
        t = TofuTopology.for_virtual_shape((32, 36, 32))
        assert t.virtual_shape == (32, 36, 32)
        assert t.node_count == 36864

    def test_for_virtual_shape_rejects_non_multiples(self):
        with pytest.raises(ValueError):
            TofuTopology.for_virtual_shape((5, 6, 4))

    def test_rejects_non_positive_cells(self):
        with pytest.raises(ValueError):
            TofuTopology((0, 1, 1))


class TestIndexing:
    def test_index_roundtrip(self, topo):
        for idx in range(0, topo.node_count, 7):
            c = topo.coord_of(idx)
            assert topo.node_index(c) == idx

    def test_all_coords_unique(self, topo):
        coords = list(topo.all_coords())
        assert len(coords) == topo.node_count
        assert len(set(coords)) == topo.node_count

    def test_out_of_range_index_raises(self, topo):
        with pytest.raises(ValueError):
            topo.coord_of(topo.node_count)

    def test_out_of_box_coord_raises(self, topo):
        with pytest.raises(ValueError):
            topo.node_index(TofuCoord(3, 0, 0, 0, 0, 0))


class TestVirtualFold:
    def test_virtual_roundtrip_full(self, topo):
        vx, vy, vz = topo.virtual_shape
        seen = set()
        for x in range(vx):
            for y in range(vy):
                for z in range(vz):
                    c = topo.coord_for_virtual((x, y, z))
                    assert topo.virtual_of(c) == (x, y, z)
                    seen.add(c)
        assert len(seen) == topo.node_count  # bijection

    def test_virtual_neighbors_are_close(self, topo):
        """+/-1 on the virtual grid is at most 2 physical hops."""
        vx, vy, vz = topo.virtual_shape
        for x in range(vx - 1):
            assert topo.virtual_hops((x, 0, 0), (x + 1, 0, 0)) <= 2
        for y in range(vy - 1):
            assert topo.virtual_hops((0, y, 0), (0, y + 1, 0)) <= 2
        for z in range(vz - 1):
            assert topo.virtual_hops((0, 0, z), (0, 0, z + 1)) <= 2

    def test_serpentine_keeps_intra_cell_steps_one_hop(self, topo):
        # Steps inside a cell along the folded axis are exactly one hop.
        assert topo.virtual_hops((0, 0, 0), (1, 0, 0)) == 1
        assert topo.virtual_hops((0, 0, 0), (0, 1, 0)) == 1

    def test_out_of_grid_virtual_raises(self, topo):
        with pytest.raises(ValueError):
            topo.coord_for_virtual(topo.virtual_shape)


class TestHops:
    def test_zero_distance(self, topo):
        c = topo.coord_of(5)
        assert topo.hops(c, c) == 0

    def test_symmetry(self, topo):
        a = topo.coord_of(3)
        b = topo.coord_of(40)
        assert topo.hops(a, b) == topo.hops(b, a)

    def test_triangle_inequality_sample(self, topo):
        a, b, c = (topo.coord_of(i) for i in (0, 17, 33))
        assert topo.hops(a, c) <= topo.hops(a, b) + topo.hops(b, c)

    def test_torus_wraps_on_xyz(self):
        t = TofuTopology((4, 4, 4))
        a = TofuCoord(0, 0, 0, 0, 0, 0)
        b = TofuCoord(3, 0, 0, 0, 0, 0)
        assert t.hops(a, b) == 1  # wraps around

    def test_b_axis_is_torus(self, topo):
        a = TofuCoord(0, 0, 0, 0, 0, 0)
        b = TofuCoord(0, 0, 0, 0, 2, 0)
        assert topo.hops(a, b) == 1  # size-3 ring: 0 -> 2 is one hop back

    def test_a_axis_is_mesh(self, topo):
        # a has one port: 0 -> 1 is one hop, no wrap possible at size 2
        # (wrap would also be 1 here, but the axis is declared mesh; the
        # distinction matters for the router model, tested via TORUS_AXES).
        from repro.machine.topology import TORUS_AXES

        assert TORUS_AXES == (True, True, True, False, True, False)

    def test_additivity_over_axes(self, topo):
        a = TofuCoord(0, 0, 0, 0, 0, 0)
        b = TofuCoord(1, 1, 0, 1, 0, 1)
        assert topo.hops(a, b) == 4
