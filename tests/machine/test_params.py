"""Machine-parameter invariants, including the calibration orderings the
paper's analysis depends on."""

import pytest

from repro.machine import FUGAKU, MachineParams


class TestShape:
    def test_cores_per_node_is_48(self):
        assert FUGAKU.cores_per_node == 48

    def test_threads_per_rank_is_12_at_4_ranks(self):
        assert FUGAKU.threads_per_rank == 12

    def test_six_tnis(self):
        assert FUGAKU.tnis_per_node == 6

    def test_nine_cqs_per_tni(self):
        assert FUGAKU.cqs_per_tni == 9

    def test_peak_flops_is_about_3_tflops(self):
        # 48 cores x 2 GHz x 32 dp flops = 3.07 TF (paper: 537 PF / 158976
        # nodes = 3.38 TF at boost clock; nominal clock is fine).
        assert 2.5e12 < FUGAKU.node_peak_flops < 4e12


class TestCalibrationOrderings:
    """The inequalities the paper's story rests on."""

    def test_utofu_injection_much_smaller_than_mpi(self):
        # Fig. 6's premise: T_inj(MPI) >> T_inj(uTofu).
        assert FUGAKU.mpi_t_inj > 8 * FUGAKU.utofu_t_inj

    def test_threadpool_cheaper_than_openmp(self):
        # Section 3.3: 1.1 us vs 5.8 us, paper-measured.
        assert FUGAKU.threadpool_fork_join == pytest.approx(1.1e-6)
        assert FUGAKU.openmp_fork_join == pytest.approx(5.8e-6)

    def test_rdma_put_latency_matches_paper(self):
        assert FUGAKU.rdma_put_latency == pytest.approx(0.49e-6)

    def test_link_bandwidth_matches_paper(self):
        assert FUGAKU.link_bandwidth == pytest.approx(6.8e9)


class TestCostFunctions:
    def test_registration_cost_grows_with_pages(self):
        small = FUGAKU.registration_cost(100)
        large = FUGAKU.registration_cost(100 * FUGAKU.page_size)
        assert large > small > 0

    def test_registration_cost_has_kernel_trap_floor(self):
        assert FUGAKU.registration_cost(0) == pytest.approx(FUGAKU.registration_base)

    def test_wire_time_monotone_in_size(self):
        assert FUGAKU.wire_time(1024, 1) > FUGAKU.wire_time(8, 1)

    def test_wire_time_monotone_in_hops(self):
        assert FUGAKU.wire_time(64, 3) > FUGAKU.wire_time(64, 1)

    def test_wire_time_first_hop_free_of_hop_latency(self):
        # Pipelining: hop latency applies to hops beyond the first.
        t0 = FUGAKU.wire_time(64, 0)
        t1 = FUGAKU.wire_time(64, 1)
        assert t0 == pytest.approx(t1)

    def test_wire_time_rejects_negative_hops(self):
        with pytest.raises(ValueError):
            FUGAKU.wire_time(64, -1)

    def test_copy_time_linear(self):
        assert FUGAKU.copy_time(2000) == pytest.approx(2 * FUGAKU.copy_time(1000))


class TestEvolve:
    def test_evolve_returns_new_instance(self):
        p2 = FUGAKU.evolve(ranks_per_node=2)
        assert p2.ranks_per_node == 2
        assert FUGAKU.ranks_per_node == 4
        assert isinstance(p2, MachineParams)

    def test_evolve_threads_per_rank_updates(self):
        p2 = FUGAKU.evolve(ranks_per_node=2)
        assert p2.threads_per_rank == 24
