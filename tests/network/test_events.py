"""Event-queue and resource primitives."""

import pytest

from repro.network import EventQueue, Resource


class TestEventQueue:
    def test_runs_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(3.0, lambda t: seen.append(("c", t)))
        q.schedule(1.0, lambda t: seen.append(("a", t)))
        q.schedule(2.0, lambda t: seen.append(("b", t)))
        q.run()
        assert [s[0] for s in seen] == ["a", "b", "c"]
        assert q.now == 3.0
        assert q.processed == 3

    def test_stable_for_equal_times(self):
        q = EventQueue()
        seen = []
        for i in range(5):
            q.schedule(1.0, lambda t, i=i: seen.append(i))
        q.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_schedule_in_past_raises(self):
        q = EventQueue()
        q.schedule(5.0, lambda t: q.schedule(1.0, lambda t2: None))
        with pytest.raises(ValueError):
            q.run()

    def test_schedule_in_relative(self):
        q = EventQueue()
        seen = []
        q.schedule(2.0, lambda t: q.schedule_in(3.0, lambda t2: seen.append(t2)))
        q.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.schedule_in(-1.0, lambda t: None)

    def test_run_until_stops_early(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, lambda t: seen.append(1))
        q.schedule(10.0, lambda t: seen.append(10))
        q.run(until=5.0)
        assert seen == [1]
        assert q.now == 5.0
        assert len(q) == 1

    def test_events_can_spawn_events(self):
        q = EventQueue()
        seen = []

        def chain(t):
            seen.append(t)
            if t < 3:
                q.schedule_in(1.0, chain)

        q.schedule(1.0, chain)
        q.run()
        assert seen == [1.0, 2.0, 3.0]


class TestResource:
    def test_acquire_when_free_starts_at_ready(self):
        r = Resource("tni")
        start, end = r.acquire(ready=2.0, duration=1.0)
        assert (start, end) == (2.0, 3.0)

    def test_acquire_when_busy_queues(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        start, end = r.acquire(ready=1.0, duration=1.0)
        assert (start, end) == (5.0, 6.0)

    def test_busy_time_accumulates(self):
        r = Resource()
        r.acquire(0.0, 2.0)
        r.acquire(0.0, 3.0)
        assert r.busy_time == 5.0
        assert r.grants == 2

    def test_utilization(self):
        r = Resource()
        r.acquire(0.0, 5.0)
        assert r.utilization(10.0) == pytest.approx(0.5)
        assert r.utilization(0.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Resource().acquire(0.0, -1.0)

    def test_reset(self):
        r = Resource()
        r.acquire(0.0, 2.0)
        r.reset()
        assert r.busy_until == 0.0 and r.busy_time == 0.0 and r.grants == 0
