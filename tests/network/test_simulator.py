"""Network-simulator behaviour: injection serialization, TNI contention,
stage barriers, and the paper's qualitative orderings (Fig. 6, Fig. 8)."""

import pytest

from repro.machine import FUGAKU
from repro.network import (
    Message,
    NetworkSimulator,
    MpiStack,
    UtofuStack,
    simulate_round,
)


@pytest.fixture
def utofu_sim():
    return NetworkSimulator(UtofuStack())


@pytest.fixture
def mpi_sim():
    return NetworkSimulator(MpiStack())


class TestMessageValidation:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Message(nbytes=-1)

    def test_negative_hops_rejected(self):
        with pytest.raises(ValueError):
            Message(nbytes=8, hops=-1)


class TestSerialization:
    def test_single_thread_injections_serialize(self, utofu_sim):
        one = utofu_sim.run_round([Message(64)]).completion_time
        many = utofu_sim.run_round([Message(64)] * 10).completion_time
        # 9 extra injection intervals must appear.
        assert many >= one + 9 * UtofuStack().injection_interval(64) * 0.99

    def test_distinct_threads_inject_in_parallel(self):
        sim = NetworkSimulator(UtofuStack())
        serial = sim.run_round([Message(64, thread=0, tni=0)] * 6).completion_time
        parallel = sim.run_round(
            [Message(64, thread=t, tni=t) for t in range(6)]
        ).completion_time
        # Parallel time is one injection + latency; serial pays 6
        # injections.  The fixed latency floor keeps the ratio below 6.
        assert parallel < serial * 0.6

    def test_same_tni_contends(self):
        sim = NetworkSimulator(UtofuStack())
        shared = sim.run_round(
            [Message(4096, rank=r, thread=0, tni=0) for r in range(4)]
        ).completion_time
        spread = sim.run_round(
            [Message(4096, rank=r, thread=0, tni=r) for r in range(4)]
        ).completion_time
        assert shared > spread

    def test_vcq_switching_costs(self):
        """One thread hopping over 6 VCQs (6TNI-p2p mode) pays extra."""
        sim = NetworkSimulator(UtofuStack())
        same_vcq = sim.run_round(
            [Message(64, thread=0, tni=0) for _ in range(12)]
        ).completion_time
        hopping = sim.run_round(
            [Message(64, thread=0, tni=i % 6) for i in range(12)]
        ).completion_time
        assert hopping > same_vcq

    def test_hops_add_latency(self, utofu_sim):
        near = utofu_sim.point_to_point_time(64, 1)
        far = utofu_sim.point_to_point_time(64, 3)
        assert far == pytest.approx(near + 2 * FUGAKU.hop_latency)


class TestProtocolExpansion:
    def test_mpi_unknown_length_creates_extra_wire_message(self, mpi_sim):
        known = mpi_sim.run_round([Message(1024, known_length=True)])
        unknown = mpi_sim.run_round([Message(1024, known_length=False)])
        assert unknown.wire_messages == known.wire_messages + 1
        assert unknown.completion_time > known.completion_time


class TestStaged:
    def test_stages_serialize(self, utofu_sim):
        stage = [Message(256)] * 2
        one = utofu_sim.run_round(stage).completion_time
        three = utofu_sim.run_staged([stage, stage, stage]).completion_time
        assert three > 2.5 * one

    def test_barrier_cost_applied_between_stages(self):
        sim_free = NetworkSimulator(UtofuStack(), barrier_cost=0.0)
        sim_barrier = NetworkSimulator(UtofuStack(), barrier_cost=5e-6)
        stages = [[Message(64)], [Message(64)]]
        assert (
            sim_barrier.run_staged(stages).completion_time
            >= sim_free.run_staged(stages).completion_time + 5e-6
        )

    def test_empty_round(self, utofu_sim):
        res = utofu_sim.run_round([])
        assert res.completion_time == 0.0
        assert res.message_count == 0


class TestPaperOrderings:
    """The Fig. 6 story, as inequalities over the simulator."""

    P2P_65K = [Message(528, 1)] * 3 + [Message(132, 2)] * 6 + [Message(33, 3)] * 4
    STAGES_65K = [
        [Message(528, 1)] * 2,
        [Message(660, 1)] * 2,
        [Message(924, 1)] * 2,
    ]

    def test_mpi_p2p_slower_than_mpi_3stage(self):
        """Naive MPI p2p loses: 13 heavy injections beat 6 + barriers."""
        sim = NetworkSimulator(MpiStack())
        p2p = sim.run_round(self.P2P_65K).completion_time
        staged = sim.run_staged(self.STAGES_65K).completion_time
        assert p2p > staged

    def test_utofu_p2p_faster_than_utofu_3stage(self):
        sim = NetworkSimulator(UtofuStack())
        p2p = sim.run_round(self.P2P_65K).completion_time
        staged = sim.run_staged(self.STAGES_65K).completion_time
        assert p2p < staged

    def test_utofu_p2p_vs_mpi_3stage_reduction_band(self):
        """Paper: 79 % reduction; assert a generous band around it."""
        ut = NetworkSimulator(UtofuStack()).run_round(self.P2P_65K).completion_time
        mp = NetworkSimulator(MpiStack()).run_staged(self.STAGES_65K).completion_time
        reduction = 1 - ut / mp
        assert 0.6 < reduction < 0.95

    def test_parallel_injection_boosts_small_message_rate(self):
        """Fig. 8: >= 50 % message-rate gain below 512 B with 6 threads."""
        stack = UtofuStack()
        small = 256
        single = simulate_round(
            [Message(small, rank=r, thread=0, tni=r) for r in range(4) for _ in range(50)],
            stack,
        )
        parallel = simulate_round(
            [
                Message(small, rank=r, thread=i % 6, tni=i % 6)
                for r in range(4)
                for i in range(50)
            ],
            stack,
        )
        assert parallel.message_rate() > 1.5 * single.message_rate()

    def test_single_thread_6tni_slower_than_4tni(self):
        """Fig. 8 / Fig. 12: 6 TNIs with one thread lose to 4 TNIs."""
        stack = UtofuStack()
        four = simulate_round(
            [Message(256, rank=r, thread=0, tni=r) for r in range(4) for _ in range(50)],
            stack,
        )
        six = simulate_round(
            [
                Message(256, rank=r, thread=0, tni=i % 6)
                for r in range(4)
                for i in range(50)
            ],
            stack,
        )
        assert six.message_rate() < four.message_rate()

    def test_large_messages_bandwidth_bound(self):
        """Beyond ~4 KiB the wire dominates and threading stops helping
        message rate (the Fig. 8 convergence)."""
        stack = UtofuStack()
        big = 65536
        single = simulate_round(
            [Message(big, rank=0, thread=0, tni=0) for _ in range(20)], stack
        )
        # rate limited by serialization: bytes/bandwidth
        floor = 20 * big / FUGAKU.link_bandwidth
        assert single.completion_time >= floor


class TestRoundResult:
    def test_message_rate_and_bandwidth(self, utofu_sim):
        res = utofu_sim.run_round([Message(1000)] * 4)
        assert res.message_count == 4
        assert res.message_rate() == pytest.approx(4 / res.completion_time)
        assert res.bandwidth(4000) == pytest.approx(4000 / res.completion_time)
