"""Software-stack cost-model tests (MPI vs uTofu)."""

import pytest

from repro.machine import FUGAKU
from repro.network import MpiStack, UtofuStack, stack_by_name


@pytest.fixture
def mpi():
    return MpiStack()


@pytest.fixture
def utofu():
    return UtofuStack()


class TestInjection:
    def test_utofu_injection_much_cheaper(self, mpi, utofu):
        assert utofu.injection_interval(64) < mpi.injection_interval(64) / 8

    def test_mpi_rendezvous_penalty(self, mpi):
        small = mpi.injection_interval(1024)
        large = mpi.injection_interval(FUGAKU.mpi_rendezvous_threshold + 1)
        assert large > small + FUGAKU.mpi_rendezvous_extra / 2

    def test_utofu_injection_flat_in_size(self, utofu):
        assert utofu.injection_interval(8) == utofu.injection_interval(64 * 1024)


class TestProtocolMessages:
    def test_mpi_unknown_length_needs_two_messages(self, mpi):
        """The overhead the paper's message-combine removes (3.5.1)."""
        assert mpi.protocol_message_count(1024, known_length=False) == 2
        assert mpi.protocol_message_count(1024, known_length=True) == 1

    def test_utofu_always_single_message(self, utofu):
        assert utofu.protocol_message_count(1024, known_length=False) == 1
        assert utofu.protocol_message_count(1024, known_length=True) == 1


class TestLatency:
    def test_mpi_software_latency_heavier(self, mpi, utofu):
        assert mpi.software_latency(64) > utofu.software_latency(64)

    def test_cache_injection_reduces_latency(self):
        with_ci = UtofuStack(cache_injection=True)
        without = UtofuStack(cache_injection=False)
        assert with_ci.software_latency(64) < without.software_latency(64)

    def test_latency_never_negative(self):
        params = FUGAKU.evolve(cache_injection_saving=1.0)  # absurdly large
        s = UtofuStack(params=params)
        assert s.software_latency(64) >= 0.0


class TestPiggyback:
    def test_only_utofu_supports_piggyback(self, mpi, utofu):
        assert utofu.supports_piggyback()
        assert not mpi.supports_piggyback()


class TestFactory:
    def test_by_name(self):
        assert isinstance(stack_by_name("mpi"), MpiStack)
        assert isinstance(stack_by_name("UTOFU"), UtofuStack)

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            stack_by_name("verbs")
