"""Bit-equality of the cumsum-batched round against the event loop.

``simulate_round`` dispatches to ``_simulate_round_batched`` whenever
faults and observability are off; the whole point of that fast path is
that no caller can tell.  These tests run identical message lists down
both paths (the event loop is forced by enabling the tracer, whose
per-round spans must not change any returned number) and require exact
float equality of completion times, injection ends, arrivals, thread
clocks and TNI-engine state.
"""

import numpy as np
import pytest

from repro.machine import FUGAKU
from repro.network import Message, MpiStack, UtofuStack, simulate_round
from repro.network.simulator import Resource, _simulate_round_batched
from repro.obs.trace import tracing


def _rounds(seed: int, stack_cls):
    """A few chained rounds of irregular messages on shared state."""
    rng = np.random.default_rng(seed)
    rounds = []
    for _ in range(3):
        msgs = []
        for _ in range(int(rng.integers(1, 30))):
            msgs.append(
                Message(
                    nbytes=int(rng.choice([8, 64, 1024, 40_000, 2_000_000])),
                    hops=int(rng.integers(1, 5)),
                    rank=int(rng.integers(0, 4)),
                    thread=int(rng.integers(0, 3)),
                    tni=0,  # per-stream TNI uniformity (batched precondition)
                    known_length=bool(rng.integers(0, 2)),
                )
            )
        rounds.append(msgs)
    return rounds


def _drive(rounds, stack, force_event_loop: bool):
    clocks: dict = {}
    engines: dict = {}
    results = []
    t = 0.0
    for msgs in rounds:
        if force_event_loop:
            with tracing():
                r = simulate_round(msgs, stack, FUGAKU, t, clocks, engines)
        else:
            r = simulate_round(msgs, stack, FUGAKU, t, clocks, engines)
        results.append(r)
        t = r.completion_time
    return results, clocks, engines


def _engine_state(engines):
    return {
        tni: (e.busy_until, e.busy_time, e.grants) for tni, e in engines.items()
    }


class TestBatchedBitEquality:
    @pytest.mark.parametrize("stack_cls", [UtofuStack, MpiStack])
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_chained_rounds_identical(self, stack_cls, seed):
        stack = stack_cls()
        rounds = _rounds(seed, stack_cls)
        fast, fc, fe = _drive(rounds, stack, force_event_loop=False)
        slow, sc, se = _drive(rounds, stack, force_event_loop=True)
        for f, s in zip(fast, slow):
            assert f.completion_time == s.completion_time
            assert f.last_injection == s.last_injection
            assert f.arrivals == s.arrivals
            assert f.wire_messages == s.wire_messages
        assert fc == sc
        assert _engine_state(fe) == _engine_state(se)

    def test_results_are_python_floats(self):
        """No np.float64 may leak into clocks or results (repr stability)."""
        stack = UtofuStack()
        clocks: dict = {}
        engines: dict = {}
        r = simulate_round(
            [Message(64, thread=0, tni=0)] * 5, stack, FUGAKU, 0.0, clocks, engines
        )
        assert type(r.completion_time) is float
        assert all(type(a) is float for a in r.arrivals)
        assert all(type(v) is float for v in clocks.values())


class TestBatchedFallback:
    def test_multi_tni_stream_falls_back(self):
        """A thread hopping TNIs pays VCQ switching: batched must refuse."""
        stack = UtofuStack()
        msgs = [Message(64, thread=0, tni=i % 2) for i in range(6)]
        assert _simulate_round_batched(msgs, stack, FUGAKU, 0.0, {}, {}) is None
        # ... and the dispatching entry point still prices the switch.
        hop = simulate_round(msgs, stack, FUGAKU).completion_time
        flat = simulate_round(
            [Message(64, thread=0, tni=0) for _ in range(6)], stack, FUGAKU
        ).completion_time
        assert hop > flat

    def test_fallback_leaves_state_untouched(self):
        """A refused batch must not have half-updated the clocks."""
        stack = UtofuStack()
        clocks = {(0, 0): 5.0}
        engines = {0: Resource("tni0")}
        msgs = [Message(64, rank=0, thread=0, tni=i % 2) for i in range(4)]
        assert _simulate_round_batched(msgs, stack, FUGAKU, 0.0, clocks, engines) is None
        assert clocks == {(0, 0): 5.0}
        assert engines[0].grants == 0

    def test_mpi_unknown_length_falls_back_to_event_loop(self):
        """Two-wire-message protocols are priced by the event loop only."""
        stack = MpiStack()
        msgs = [Message(64, known_length=False)]
        assert stack.protocol_message_count(64, False) == 2
        batched = _simulate_round_batched(msgs, stack, FUGAKU, 0.0, {}, {})
        assert batched is None
        assert simulate_round(msgs, stack, FUGAKU).wire_messages == 2

    def test_empty_round(self):
        stack = UtofuStack()
        r = simulate_round([], stack, FUGAKU, start_time=2.5)
        assert r.completion_time == 2.5
        assert r.arrivals == []
