"""Documentation contract: every public item carries a docstring.

Walks the whole ``repro`` package and asserts that modules, public
classes, public functions and public methods are documented — the
deliverable is a library someone else can adopt, and this test keeps the
bar from silently eroding.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_documented(module):
    assert module.__doc__ and module.__doc__.strip(), f"{module.__name__} lacks a docstring"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
            continue
        if inspect.isclass(obj):
            for m_name, member in vars(obj).items():
                if m_name.startswith("_") or not inspect.isfunction(member):
                    continue
                if not (member.__doc__ and member.__doc__.strip()):
                    undocumented.append(f"{name}.{m_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )
