"""Stencil mini-app tests: the paper's generalization claim."""

import numpy as np
import pytest

from repro.core.patterns import shell_offsets
from repro.runtime import World
from repro.stencil import (
    DistributedField,
    JacobiSolver,
    P2PHalo,
    ThreeStageHalo,
    jacobi_reference,
    make_halo,
)


def make_field(grid=(2, 2, 2), shape=(8, 8, 8), seed=0):
    world = World(int(np.prod(grid)), grid=grid)
    field = DistributedField(world, shape)
    rng = np.random.default_rng(seed)
    field.scatter_global(rng.random(shape))
    return world, field


class TestDistributedField:
    def test_scatter_gather_roundtrip(self):
        world, field = make_field()
        rng = np.random.default_rng(3)
        data = rng.random((8, 8, 8))
        field.scatter_global(data)
        assert np.array_equal(field.gather_global(), data)

    def test_interior_shape(self):
        world, field = make_field(grid=(2, 2, 1), shape=(8, 4, 6))
        assert field.interior(0).shape == (4, 2, 6)
        assert field.full(0).shape == (6, 4, 8)

    def test_indivisible_shape_rejected(self):
        world = World(8, grid=(2, 2, 2))
        with pytest.raises(ValueError):
            DistributedField(world, (9, 8, 8))

    def test_block_thinner_than_halo_rejected(self):
        world = World(8, grid=(2, 2, 2))
        with pytest.raises(ValueError):
            DistributedField(world, (2, 8, 8), halo_width=2)

    def test_send_recv_slab_shapes(self):
        world, field = make_field()
        face = field.send_slab(0, (1, 0, 0))
        assert face.shape == (1, 4, 4)
        edge = field.send_slab(0, (1, -1, 0))
        assert edge.shape == (1, 1, 4)
        corner = field.recv_slab(0, (1, 1, 1))
        assert corner.shape == (1, 1, 1)

    def test_interior_sum_matches_global(self):
        world, field = make_field(seed=5)
        assert field.total_interior_sum() == pytest.approx(
            field.gather_global().sum()
        )


class TestHaloExchanges:
    @pytest.mark.parametrize("pattern", ["p2p", "3stage"])
    def test_halos_match_periodic_neighbors(self, pattern):
        """Every halo cell must equal the periodic global value."""
        world, field = make_field(seed=7)
        data = field.gather_global()
        make_halo(field, pattern).exchange()
        padded = np.pad(data, 1, mode="wrap")
        for rank in range(world.size):
            ix, iy, iz = world.grid_pos_of(rank)
            bx, by, bz = field.block_shape
            want = padded[
                ix * bx : ix * bx + bx + 2,
                iy * by : iy * by + by + 2,
                iz * bz : iz * bz + bz + 2,
            ]
            assert np.array_equal(field.full(rank), want)

    def test_patterns_fill_identical_halos(self):
        w1, f1 = make_field(seed=9)
        w2, f2 = make_field(seed=9)
        P2PHalo(f1).exchange()
        ThreeStageHalo(f2).exchange()
        for rank in range(8):
            assert np.array_equal(f1.full(rank), f2.full(rank))

    def test_message_counts_match_patterns(self):
        world, field = make_field()
        assert P2PHalo(field).messages_per_exchange() == 26
        assert ThreeStageHalo(field).messages_per_exchange() == 6

    def test_3stage_forwarding_grows_messages(self):
        """Later dimensions carry the earlier halos — the stage-2/3
        message growth of Table 1, on a mesh."""
        world, field = make_field(shape=(8, 8, 8))
        sched = ThreeStageHalo(field).message_schedule()
        sizes = [n for n, _ in sched]
        assert sizes[0] < sizes[2] < sizes[4]  # x < y < z slabs

    def test_p2p_schedule_has_face_edge_corner_sizes(self):
        world, field = make_field()
        sizes = sorted({n for n, _ in P2PHalo(field).message_schedule()})
        assert len(sizes) == 3  # corner < edge < face

    def test_total_bytes_match_between_patterns(self):
        """Both patterns deliver the same halo volume; 3-stage sends the
        corner data through intermediate ranks so its wire total equals
        the direct p2p total."""
        w1, f1 = make_field(seed=11)
        w2, f2 = make_field(seed=11)
        P2PHalo(f1).exchange()
        ThreeStageHalo(f2).exchange()
        b1 = w1.transport.log.total_bytes()
        b2 = w2.transport.log.total_bytes()
        assert b1 == b2

    def test_single_rank_periodic_wrap(self):
        world = World(1, grid=(1, 1, 1))
        field = DistributedField(world, (4, 4, 4))
        rng = np.random.default_rng(2)
        data = rng.random((4, 4, 4))
        field.scatter_global(data)
        make_halo(field, "p2p").exchange()
        padded = np.pad(data, 1, mode="wrap")
        assert np.array_equal(field.full(0), padded)

    def test_unknown_pattern(self):
        world, field = make_field()
        with pytest.raises(ValueError):
            make_halo(field, "avian-carrier")


class TestJacobi:
    @pytest.mark.parametrize("pattern", ["p2p", "3stage"])
    def test_matches_reference(self, pattern):
        rng = np.random.default_rng(1)
        data = rng.random((8, 8, 8))
        ref = jacobi_reference(data, 6)
        world = World(8, grid=(2, 2, 2))
        solver = JacobiSolver(world, (8, 8, 8), pattern=pattern)
        solver.set_initial(data)
        solver.run(6)
        assert solver.residual_vs(ref) < 1e-13

    def test_mean_conserved(self):
        rng = np.random.default_rng(4)
        data = rng.random((8, 8, 8))
        world = World(4, grid=(2, 2, 1))
        solver = JacobiSolver(world, (8, 8, 8))
        solver.set_initial(data)
        solver.run(10)
        assert solver.solution().mean() == pytest.approx(data.mean())

    def test_smoothing_reduces_variance(self):
        rng = np.random.default_rng(6)
        data = rng.random((8, 8, 8))
        world = World(8, grid=(2, 2, 2))
        solver = JacobiSolver(world, (8, 8, 8))
        solver.set_initial(data)
        solver.run(20)
        assert solver.solution().var() < 0.05 * data.var()

    def test_corners_are_load_bearing(self):
        """Zeroing corner halos after the exchange changes the answer —
        proof the 27-point stencil genuinely needs the full shell."""
        rng = np.random.default_rng(8)
        data = rng.random((8, 8, 8))
        ref = jacobi_reference(data, 1)
        world = World(8, grid=(2, 2, 2))
        solver = JacobiSolver(world, (8, 8, 8), pattern="p2p")
        solver.set_initial(data)
        solver.halo.exchange()
        for rank in range(8):
            solver.field.recv_slab(rank, (1, 1, 1))[:] = 0.0  # sabotage
        from repro.stencil.jacobi import _apply_cube

        for rank in range(8):
            solver.field.interior(rank)[:] = _apply_cube(
                solver.field.full(rank), solver.theta, 1
            )
        assert solver.residual_vs(ref) > 1e-6

    def test_invalid_theta(self):
        world = World(1, grid=(1, 1, 1))
        with pytest.raises(ValueError):
            JacobiSolver(world, (4, 4, 4), theta=0.0)

    def test_uniform_field_is_fixed_point(self):
        world = World(8, grid=(2, 2, 2))
        solver = JacobiSolver(world, (8, 8, 8))
        solver.set_initial(np.full((8, 8, 8), 3.5))
        solver.run(3)
        assert np.allclose(solver.solution(), 3.5)


class TestWideHalos:
    """Width-2 halos + the 125-point kernel: the long-cutoff regime on a
    mesh (the stencil analogue of the paper's Fig. 15 scenarios)."""

    @pytest.mark.parametrize("pattern", ["p2p", "3stage"])
    def test_radius2_matches_reference(self, pattern):
        rng = np.random.default_rng(14)
        data = rng.random((8, 8, 8))
        ref = jacobi_reference(data, 4, radius=2)
        world = World(8, grid=(2, 2, 2))
        solver = JacobiSolver(world, (8, 8, 8), pattern=pattern, radius=2)
        solver.set_initial(data)
        solver.run(4)
        assert solver.residual_vs(ref) < 1e-12

    def test_radius2_mean_conserved(self):
        rng = np.random.default_rng(15)
        data = rng.random((8, 8, 8))
        world = World(4, grid=(2, 2, 1))
        solver = JacobiSolver(world, (8, 8, 8), radius=2)
        solver.set_initial(data)
        solver.run(6)
        assert solver.solution().mean() == pytest.approx(data.mean())

    def test_wide_halo_message_sizes_grow(self):
        world = World(8, grid=(2, 2, 2))
        f1 = DistributedField(world, (8, 8, 8), halo_width=1)
        world2 = World(8, grid=(2, 2, 2))
        f2 = DistributedField(world2, (8, 8, 8), halo_width=2)
        b1 = sum(n for n, _ in P2PHalo(f1).message_schedule())
        b2 = sum(n for n, _ in P2PHalo(f2).message_schedule())
        assert b2 > 2 * b1  # wider strips, cubically bigger corners

    def test_invalid_radius(self):
        world = World(1, grid=(1, 1, 1))
        with pytest.raises(ValueError):
            JacobiSolver(world, (4, 4, 4), radius=0)
