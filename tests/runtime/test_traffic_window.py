"""Bounded TrafficLog: rolling retention with exact whole-run aggregates."""

import numpy as np

from repro.runtime.transport import SentMessage, TrafficLog


def _msgs(n, seed=0):
    rng = np.random.default_rng(seed)
    phases = ("border", "forward", "reverse")
    return [
        SentMessage(
            src=int(rng.integers(0, 4)),
            dst=int(rng.integers(0, 4)),
            tag=("t", i),
            nbytes=int(rng.integers(8, 4096)),
            phase=phases[int(rng.integers(0, 3))],
        )
        for i in range(n)
    ]


class TestRollingWindow:
    def test_retention_is_bounded(self):
        log = TrafficLog()
        log.set_window(50)
        for m in _msgs(500):
            log.record(m)
        # Chunked trimming: never more than twice the window retained.
        assert len(log.messages) <= 100
        # The newest records are the ones kept.
        assert log.messages[-1].tag == ("t", 499)

    def test_aggregates_match_unbounded_log(self):
        bounded, unbounded = TrafficLog(), TrafficLog()
        bounded.set_window(10)
        for m in _msgs(300, seed=3):
            bounded.record(m)
            unbounded.record(m)
        for phase in (None, "border", "forward", "reverse", "absent"):
            assert bounded.count(phase) == unbounded.count(phase)
            assert bounded.total_bytes(phase) == unbounded.total_bytes(phase)
            assert bounded.count_by_rank(phase) == unbounded.count_by_rank(phase)
            assert bounded.pairs(phase) == unbounded.pairs(phase)
            bs, us = bounded.summary(phase), unbounded.summary(phase)
            assert (bs.count, bs.total_bytes) == (us.count, us.total_bytes)
            assert (bs.pair_count, bs.max_pair, bs.max_pair_bytes) == (
                us.pair_count, us.max_pair, us.max_pair_bytes
            )

    def test_window_set_midstream_rebuilds_from_retained(self):
        """Bounding an already-populated log restarts exact accounting
        from what is still retained (documented semantics)."""
        log = TrafficLog()
        msgs = _msgs(20, seed=5)
        for m in msgs:
            log.record(m)
        log.set_window(100)  # all 20 retained -> aggregates cover all 20
        assert log.count() == 20
        assert log.total_bytes() == sum(m.nbytes for m in msgs)

    def test_clear_resets_aggregates(self):
        log = TrafficLog()
        log.set_window(5)
        for m in _msgs(50, seed=7):
            log.record(m)
        log.clear()
        assert log.count() == 0 and log.total_bytes() == 0
        assert log.pairs() == set() and log.count_by_rank() == {}

    def test_unbounded_default_unchanged(self):
        log = TrafficLog()
        for m in _msgs(120, seed=9):
            log.record(m)
        assert log.max_messages is None
        assert len(log.messages) == 120


class TestSimulationKnobs:
    def test_traffic_window_config_bounds_the_log(self):
        from repro import quick_lj_simulation

        sim = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), traffic_window=64
        )
        sim.run(3)
        log = sim.world.transport.log
        assert log.max_messages == 64
        assert len(log.messages) <= 128
        assert log.count() > len(log.messages)  # aggregates span the run

    def test_clear_each_step_empties_the_log(self):
        from repro import quick_lj_simulation

        sim = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), clear_traffic_each_step=True
        )
        sim.run(3)
        assert sim.world.transport.log.messages == []

    def test_windowed_run_matches_default_physics(self):
        from repro import quick_lj_simulation

        plain = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 2))
        windowed = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), traffic_window=32,
            clear_traffic_each_step=False,
        )
        plain.run(4)
        windowed.run(4)
        assert np.array_equal(plain.gather_positions(), windowed.gather_positions())
