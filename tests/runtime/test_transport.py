"""Mailbox transport and traffic-log tests."""

import numpy as np
import pytest

from repro.runtime import Transport
from repro.runtime.transport import TransportError


@pytest.fixture
def t():
    return Transport(4)


class TestSendRecv:
    def test_roundtrip(self, t):
        t.send(0, 1, "x", 42)
        assert t.recv(1, 0, "x") == 42

    def test_fifo_per_tag(self, t):
        t.send(0, 1, "x", "first")
        t.send(0, 1, "x", "second")
        assert t.recv(1, 0, "x") == "first"
        assert t.recv(1, 0, "x") == "second"

    def test_tags_isolate(self, t):
        t.send(0, 1, "a", 1)
        t.send(0, 1, "b", 2)
        assert t.recv(1, 0, "b") == 2
        assert t.recv(1, 0, "a") == 1

    def test_self_send_allowed(self, t):
        """Periodic wrap on 1-wide grids sends to oneself."""
        t.send(2, 2, "wrap", 7)
        assert t.recv(2, 2, "wrap") == 7

    def test_missing_message_raises(self, t):
        with pytest.raises(TransportError):
            t.recv(1, 0, "nope")

    def test_try_recv_returns_none(self, t):
        assert t.try_recv(1, 0, "nope") is None

    def test_rank_bounds_checked(self, t):
        with pytest.raises(TransportError):
            t.send(0, 4, "x", 1)
        with pytest.raises(TransportError):
            t.recv(-1, 0, "x")

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            Transport(0)


class TestDrainCheck:
    def test_assert_drained_ok_when_empty(self, t):
        t.send(0, 1, "x", 1)
        t.recv(1, 0, "x")
        t.assert_drained()  # should not raise

    def test_assert_drained_catches_leftovers(self, t):
        t.send(0, 1, "x", 1)
        with pytest.raises(TransportError):
            t.assert_drained()

    def test_pending_count(self, t):
        t.send(0, 1, "x", 1)
        t.send(0, 2, "y", 2)
        assert t.pending_count() == 2


class TestTrafficLog:
    def test_bytes_of_ndarray(self, t):
        t.send(0, 1, "x", np.zeros((10, 3)))
        assert t.log.total_bytes() == 240

    def test_bytes_of_tuple_payload(self, t):
        t.send(0, 1, "x", (np.zeros(5), np.zeros(3)))
        assert t.log.total_bytes() == 64

    def test_bytes_of_scalar(self, t):
        t.send(0, 1, "x", 3.14)
        assert t.log.total_bytes() == 8

    def test_phase_labels(self, t):
        t.set_phase("border")
        t.send(0, 1, "x", 1.0)
        t.set_phase("forward")
        t.send(0, 1, "y", 2.0)
        assert t.log.count("border") == 1
        assert t.log.count("forward") == 1
        assert t.log.count() == 2

    def test_count_by_rank(self, t):
        t.send(0, 1, "a", 1.0)
        t.send(0, 2, "b", 1.0)
        t.send(3, 2, "c", 1.0)
        assert t.log.count_by_rank() == {0: 2, 3: 1}

    def test_pairs(self, t):
        t.send(0, 1, "a", 1.0)
        t.send(1, 0, "b", 1.0)
        assert t.log.pairs() == {(0, 1), (1, 0)}

    def test_clear(self, t):
        t.send(0, 1, "a", 1.0)
        t.log.clear()
        assert t.log.count() == 0


class TestTrafficSummary:
    def test_summary_whole_log(self, t):
        t.set_phase("border")
        t.send(0, 1, "a", np.zeros(4))
        t.set_phase("forward")
        t.send(1, 2, "b", np.zeros(8))
        s = t.log.summary()
        assert s.phase is None
        assert s.count == 2
        assert s.total_bytes == 96
        assert s.pair_count == 2

    def test_summary_filters_by_phase(self, t):
        t.set_phase("border")
        t.send(0, 1, "a", np.zeros(4))
        t.set_phase("forward")
        t.send(1, 2, "b", np.zeros(8))
        t.send(1, 2, "c", np.zeros(2))
        s = t.log.summary("forward")
        assert (s.phase, s.count, s.total_bytes) == ("forward", 2, 80)
        assert s.pair_count == 1

    def test_summary_max_pair_by_bytes(self, t):
        t.send(0, 1, "a", np.zeros(10))
        t.send(2, 3, "b", np.zeros(2))
        t.send(2, 3, "c", np.zeros(2))
        s = t.log.summary()
        assert s.max_pair == (0, 1)
        assert s.max_pair_bytes == 80

    def test_summary_empty(self, t):
        s = t.log.summary("nope")
        assert s.count == 0
        assert s.total_bytes == 0
        assert s.max_pair is None
        assert s.max_pair_bytes == 0

    def test_summary_matches_point_queries(self, t):
        for i in range(4):
            t.set_phase("forward" if i % 2 else "border")
            t.send(i, (i + 1) % 4, i, np.zeros(i + 1))
        for phase in (None, "border", "forward"):
            s = t.log.summary(phase)
            assert s.count == t.log.count(phase)
            assert s.total_bytes == t.log.total_bytes(phase)
