"""Thread-pool vs OpenMP overhead models and LPT load balancing."""

import pytest

from repro.machine import FUGAKU
from repro.runtime import OpenMPModel, ThreadPoolModel, WorkItem, split_load
from repro.runtime.threadpool import makespan


class TestSplitLoad:
    def test_balances_heterogeneous_items(self):
        """Fig. 10's scenario: 13 messages with very different costs over
        6 threads — LPT keeps the bottleneck near the mean."""
        costs = [9.0, 9.0, 9.0] + [3.0] * 6 + [1.0] * 4  # faces/edges/corners
        bins = split_load([WorkItem(i, c) for i, c in enumerate(costs)], 6)
        loads = [sum(w.cost for w in b) for b in bins]
        assert max(loads) <= 1.34 * (sum(costs) / 6)  # LPT 4/3 bound

    def test_deterministic(self):
        items = [WorkItem(i, c) for i, c in enumerate([5.0, 3.0, 3.0, 1.0])]
        a = split_load(items, 2)
        b = split_load(items, 2)
        assert [[w.payload for w in x] for x in a] == [
            [w.payload for w in x] for x in b
        ]

    def test_all_items_assigned_once(self):
        items = [WorkItem(i, float(i % 5)) for i in range(50)]
        bins = split_load(items, 6)
        seen = sorted(w.payload for b in bins for w in b)
        assert seen == list(range(50))

    def test_fewer_items_than_threads(self):
        bins = split_load([WorkItem(0, 1.0)], 6)
        assert sum(len(b) for b in bins) == 1

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            split_load([], 0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            WorkItem(0, -1.0)

    def test_makespan_empty(self):
        assert makespan([[], []]) == 0.0


class TestOverheadModels:
    def test_paper_measured_overheads(self):
        pool = ThreadPoolModel(6)
        omp = OpenMPModel(6)
        assert pool.fork_join == pytest.approx(1.1e-6)
        assert omp.fork_join == pytest.approx(5.8e-6)

    def test_empty_region_still_pays_fork_join(self):
        pool = ThreadPoolModel(6)
        assert pool.parallel_time([]) == pytest.approx(pool.fork_join)

    def test_openmp_dominates_tiny_work(self):
        """The paper's modify-stage observation: at 22 atoms the region
        overhead is ~10x the work under OpenMP."""
        work = [0.05e-6] * 22  # 22 atoms' worth of NVE arithmetic
        omp = OpenMPModel(12)
        t = omp.parallel_time(work)
        useful = max(sum(work[i::12]) for i in range(12))
        assert t > 10 * useful

    def test_threadpool_beats_openmp_on_small_work(self):
        work = [0.05e-6] * 22
        assert ThreadPoolModel(12).parallel_time(work) < OpenMPModel(12).parallel_time(
            work
        )

    def test_models_converge_for_large_balanced_work(self):
        work = [1e-6] * 1200
        tp = ThreadPoolModel(12).parallel_time(work)
        om = OpenMPModel(12).parallel_time(work)
        assert om - tp == pytest.approx(
            FUGAKU.openmp_fork_join - FUGAKU.threadpool_fork_join, rel=0.01
        )

    def test_lpt_beats_static_on_skewed_work(self):
        """Cost-aware pool scheduling vs OpenMP static round-robin."""
        work = [10e-6] + [1e-6] * 11 + [10e-6] + [1e-6] * 11
        tp = ThreadPoolModel(12).parallel_time(work)
        om = OpenMPModel(12).parallel_time(work)
        # static puts both heavy items on threads 0 and 1 round-robin --
        # actually indexes 0 and 12 -> both land on thread 0: 20us bin.
        assert om > tp

    def test_region_counters(self):
        pool = ThreadPoolModel(4)
        pool.parallel_time([1.0])
        pool.parallel_time([1.0])
        assert pool.parallel_regions == 2

    def test_amdahl_helper(self):
        pool = ThreadPoolModel(12)
        s = pool.serial_fraction_speedup(total_work=120e-6, serial_work=0.0)
        assert 9 < s <= 12
        assert pool.serial_fraction_speedup(0.0, 0.0) == 1.0
