"""World / rank-grid arithmetic tests."""

import pytest

from repro.runtime import World


class TestConstruction:
    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            World(0)

    def test_grid_must_multiply_to_size(self):
        with pytest.raises(ValueError):
            World(8, grid=(2, 2, 3))

    def test_rank_contexts_created(self):
        w = World(6, grid=(3, 2, 1))
        assert len(w.ranks) == 6
        assert w.ranks[4].rank == 4


class TestGridArithmetic:
    def test_x_fastest_ordering(self):
        w = World(24, grid=(2, 3, 4))
        assert w.grid_pos_of(0) == (0, 0, 0)
        assert w.grid_pos_of(1) == (1, 0, 0)
        assert w.grid_pos_of(2) == (0, 1, 0)
        assert w.grid_pos_of(6) == (0, 0, 1)

    def test_roundtrip(self):
        w = World(24, grid=(2, 3, 4))
        for r in range(24):
            assert w.rank_at(w.grid_pos_of(r)) == r

    def test_periodic_wrap(self):
        w = World(8, grid=(2, 2, 2))
        assert w.rank_at((2, 0, 0)) == w.rank_at((0, 0, 0))
        assert w.rank_at((-1, 0, 0)) == w.rank_at((1, 0, 0))

    def test_neighbor_rank(self):
        w = World(27, grid=(3, 3, 3))
        assert w.neighbor_rank(0, (1, 0, 0)) == 1
        assert w.neighbor_rank(0, (-1, 0, 0)) == 2  # wraps
        assert w.neighbor_rank(13, (0, 0, 0)) == 13

    def test_grid_pos_without_grid_raises(self):
        w = World(4)
        with pytest.raises(ValueError):
            w.grid_pos_of(0)

    def test_ctx_positions_populated(self):
        w = World(8, grid=(2, 2, 2))
        assert w.ranks[7].grid_pos == (1, 1, 1)


class TestPhases:
    def test_run_phase_visits_all_ranks(self):
        w = World(5, grid=(5, 1, 1))
        visited = []
        w.run_phase("test", lambda ctx: visited.append(ctx.rank))
        assert visited == list(range(5))

    def test_run_phase_labels_traffic(self):
        w = World(2, grid=(2, 1, 1))
        w.run_phase("hello", lambda ctx: ctx.send(1 - ctx.rank, "t", ctx.rank))
        assert w.transport.log.count("hello") == 2

    def test_run_exchange_send_then_recv(self):
        w = World(3, grid=(3, 1, 1))
        received = {}

        def send(ctx):
            ctx.send((ctx.rank + 1) % 3, "ring", ctx.rank)

        def recv(ctx):
            received[ctx.rank] = ctx.recv((ctx.rank - 1) % 3, "ring")

        w.run_exchange("ring", send, recv)
        assert received == {0: 2, 1: 0, 2: 1}

    def test_ctx_try_recv(self):
        w = World(2, grid=(2, 1, 1))
        assert w.ranks[0].try_recv(1, "none") is None
