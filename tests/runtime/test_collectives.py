"""Collective functional results and cost-model sanity."""

import numpy as np
import pytest

from repro.network import MpiStack, UtofuStack
from repro.runtime import allreduce, allreduce_cost, barrier_cost, broadcast_cost


class TestFunctionalAllreduce:
    def test_sum_default(self):
        assert allreduce([1.0, 2.0, 3.0]) == 6.0

    def test_array_sum(self):
        out = allreduce([np.ones(3), 2 * np.ones(3)])
        assert np.array_equal(out, 3 * np.ones(3))

    def test_custom_op_any(self):
        """The EAM rebuild check: a logical OR over rank flags."""
        assert allreduce([False, False, True], op=any) is True
        assert allreduce([False, False], op=any) is False

    def test_custom_op_max(self):
        assert allreduce([3, 9, 1], op=max) == 9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            allreduce([])


class TestCostModel:
    def test_single_rank_free(self):
        assert allreduce_cost(1) == 0.0

    def test_log_scaling(self):
        # Doubling ranks adds about one round, far from doubling the cost.
        t1k = allreduce_cost(1024)
        t2k = allreduce_cost(2048)
        assert t1k < t2k < 1.35 * t1k

    def test_scale_of_fugaku_allreduce(self):
        """At 147 456 ranks (36 864 nodes) the allreduce is tens of us —
        the Table 3 'Other' driver for EAM."""
        t = allreduce_cost(147_456)
        assert 20e-6 < t < 1e-3

    def test_utofu_cheaper_than_mpi(self):
        assert allreduce_cost(4096, stack=UtofuStack()) < allreduce_cost(
            4096, stack=MpiStack()
        )

    def test_invalid_world_size(self):
        with pytest.raises(ValueError):
            allreduce_cost(0)

    def test_barrier_is_token_allreduce(self):
        assert barrier_cost(256) == pytest.approx(allreduce_cost(256, nbytes=8))

    def test_broadcast_grows_with_size_and_ranks(self):
        small = broadcast_cost(64, 1024)
        assert broadcast_cost(64, 1024 * 1024) > small
        assert broadcast_cost(1024, 1024) > small
        assert broadcast_cost(1, 1024) == 0.0
