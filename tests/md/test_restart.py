"""Checkpoint/restart tests: state completeness and pattern independence."""

import numpy as np
import pytest

from repro import LennardJones, SimulationConfig, quick_lj_simulation
from repro.md.restart import RESTART_VERSION, load_checkpoint, save_checkpoint


def fresh_sim(**kw):
    defaults = dict(cells=(4, 4, 4), ranks=(2, 2, 2), seed=71, neighbor_every=5)
    defaults.update(kw)
    return quick_lj_simulation(**defaults)


def cfg(pattern="p2p", rdma=False):
    return SimulationConfig(
        dt=0.005, skin=0.3, pattern=pattern, rdma=rdma, neighbor_every=5
    )


class TestRoundtrip:
    def test_restart_continues_identically(self, tmp_path):
        """run(20) == run(10) + checkpoint + run(10)."""
        straight = fresh_sim()
        straight.run(20)

        half = fresh_sim()
        half.run(10)
        ckpt = tmp_path / "mid.npz"
        save_checkpoint(half, ckpt)
        resumed = load_checkpoint(ckpt, LennardJones(cutoff=2.5), cfg(), grid=(2, 2, 2))
        assert resumed.step_count == 10
        resumed.run(10)

        d = straight.box.minimum_image(
            resumed.gather_positions() - straight.gather_positions()
        )
        assert np.abs(d).max() < 1e-12
        dv = resumed.gather_velocities() - straight.gather_velocities()
        assert np.abs(dv).max() < 1e-12

    def test_restart_across_patterns(self, tmp_path):
        """A checkpoint from a 3-stage run continues identically under
        the optimized p2p/RDMA stack — physics is pattern-independent."""
        a = fresh_sim(pattern="3stage")
        a.run(10)
        ckpt = tmp_path / "a.npz"
        save_checkpoint(a, ckpt)
        b = load_checkpoint(
            ckpt, LennardJones(cutoff=2.5), cfg("parallel-p2p", rdma=True),
            grid=(2, 2, 2),
        )
        a.run(10)
        b.run(10)
        d = a.box.minimum_image(a.gather_positions() - b.gather_positions())
        assert np.abs(d).max() < 1e-10

    def test_restart_across_rank_grids(self, tmp_path):
        a = fresh_sim(ranks=(2, 2, 2))
        a.run(8)
        ckpt = tmp_path / "grid.npz"
        save_checkpoint(a, ckpt)
        b = load_checkpoint(ckpt, LennardJones(cutoff=2.5), cfg(), grid=(2, 2, 1))
        a.run(8)
        b.run(8)
        d = a.box.minimum_image(a.gather_positions() - b.gather_positions())
        assert np.abs(d).max() < 1e-10

    def test_types_preserved(self, tmp_path):
        from repro import Simulation
        from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities

        edge = lj_density_to_cell(0.8442)
        x, box = fcc_lattice((4, 4, 4), edge)
        types = (np.arange(x.shape[0]) % 2).astype(np.int32)
        lj = LennardJones(n_types=2)
        sim = Simulation(
            x, maxwell_velocities(x.shape[0], 1.0, seed=2), box, lj, cfg(),
            grid=(2, 2, 2), types=types,
        )
        sim.run(5)
        ckpt = tmp_path / "t.npz"
        save_checkpoint(sim, ckpt)
        restored = load_checkpoint(ckpt, lj, cfg(), grid=(2, 2, 2))
        out = np.zeros(sim.natoms, dtype=np.int32)
        for rank in range(8):
            atoms = restored.atoms_of(rank)
            out[atoms.tag[: atoms.nlocal]] = atoms.type[: atoms.nlocal]
        assert np.array_equal(out, types)

    def test_default_config_from_file(self, tmp_path):
        sim = fresh_sim()
        sim.run(3)
        ckpt = tmp_path / "d.npz"
        save_checkpoint(sim, ckpt)
        restored = load_checkpoint(
            ckpt, LennardJones(cutoff=2.5), grid=(1, 1, 1)
        )
        assert restored.config.dt == pytest.approx(0.005)

    def test_version_check(self, tmp_path):
        sim = fresh_sim()
        ckpt = tmp_path / "v.npz"
        save_checkpoint(sim, ckpt)
        # Tamper with the version field.
        data = dict(np.load(ckpt))
        data["version"] = np.int64(RESTART_VERSION + 1)
        np.savez(ckpt, **data)
        with pytest.raises(ValueError, match="version"):
            load_checkpoint(ckpt, LennardJones(cutoff=2.5), grid=(1, 1, 1))
