"""LAMMPS dump-format writer/reader tests."""

import numpy as np
import pytest

from repro import quick_lj_simulation
from repro.md import Box
from repro.md.dump import DumpWriter, read_dump


@pytest.fixture
def box():
    return Box((0.0, 0.0, 0.0), (5.0, 6.0, 7.0))


class TestRoundtrip:
    def test_single_frame(self, tmp_path, box):
        path = tmp_path / "dump.atom"
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 5, size=(10, 3))
        types = rng.integers(0, 2, 10).astype(np.int32)
        w = DumpWriter(path)
        w.write_frame(42, box, x, types)
        frames = read_dump(path)
        assert len(frames) == 1
        f = frames[0]
        assert f.step == 42
        assert np.allclose(f.x, x)
        assert np.array_equal(f.types, types)
        assert np.allclose(f.box.lengths, box.lengths)
        assert f.v is None

    def test_velocities_roundtrip(self, tmp_path, box):
        path = tmp_path / "dump.atom"
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 5, size=(6, 3))
        v = rng.normal(size=(6, 3))
        w = DumpWriter(path, include_velocities=True)
        w.write_frame(0, box, x, v=v)
        f = read_dump(path)[0]
        assert np.allclose(f.v, v)

    def test_multiple_frames(self, tmp_path, box):
        path = tmp_path / "dump.atom"
        w = DumpWriter(path)
        for step in (0, 10, 20):
            w.write_frame(step, box, np.full((3, 3), float(step)))
        frames = read_dump(path)
        assert [f.step for f in frames] == [0, 10, 20]
        assert w.frames_written == 3
        assert frames[2].x[0, 0] == 20.0

    def test_velocity_writer_requires_v(self, tmp_path, box):
        w = DumpWriter(tmp_path / "d", include_velocities=True)
        with pytest.raises(ValueError):
            w.write_frame(0, box, np.zeros((2, 3)))

    def test_lammps_conventions(self, tmp_path, box):
        """Ids and types are 1-based in the file (LAMMPS convention)."""
        path = tmp_path / "dump.atom"
        DumpWriter(path).write_frame(0, box, np.zeros((1, 3)), np.array([0]))
        text = path.read_text()
        assert "ITEM: BOX BOUNDS pp pp pp" in text
        atom_line = text.splitlines()[-1]
        assert atom_line.startswith("1 1 ")

    def test_corrupt_file_rejected(self, tmp_path):
        p = tmp_path / "bad"
        p.write_text("not a dump file\n")
        with pytest.raises(ValueError):
            read_dump(p)


class TestSimulationIntegration:
    def test_dump_trajectory_from_simulation(self, tmp_path):
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 1, 1), seed=60)
        w = DumpWriter(tmp_path / "traj.dump", include_velocities=True)
        sim.setup()
        w.write_simulation_frame(sim)
        sim.run(10)
        w.write_simulation_frame(sim)
        frames = read_dump(tmp_path / "traj.dump")
        assert [f.step for f in frames] == [0, 10]
        assert frames[0].natoms == sim.natoms
        # Atoms moved between frames.
        assert not np.allclose(frames[0].x, frames[1].x)
        # Energy check through the file: rebuild KE from dumped velocities.
        ke_file = 0.5 * float(np.einsum("ij,ij->", frames[1].v, frames[1].v))
        ke_live = sum(
            sim.thermo.local_kinetic(sim.atoms_of(r)) for r in range(sim.world.size)
        )
        assert ke_file == pytest.approx(ke_live, rel=1e-8)
