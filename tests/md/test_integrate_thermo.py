"""NVE integrator, thermo reduction, and stage-timer tests."""

import numpy as np
import pytest

from repro.md import Atoms, NVEIntegrator, Stage, StageTimers, Thermo


def free_atoms(v):
    a = Atoms()
    n = v.shape[0]
    a.set_local(np.zeros((n, 3)), v, np.arange(n, dtype=np.int64))
    return a


class TestNVE:
    def test_free_flight(self):
        """With zero force, x advances by v*dt and v is unchanged."""
        v = np.array([[1.0, 2.0, 3.0]])
        a = free_atoms(v)
        nve = NVEIntegrator(dt=0.1)
        nve.initial_integrate(a)
        nve.final_integrate(a)
        assert np.allclose(a.x[0], [0.1, 0.2, 0.3])
        assert np.allclose(a.v[0], [1.0, 2.0, 3.0])

    def test_constant_force_kick(self):
        a = free_atoms(np.zeros((1, 3)))
        a.f[0] = [2.0, 0.0, 0.0]
        nve = NVEIntegrator(dt=0.1, mass=2.0)
        nve.initial_integrate(a)
        # half kick: dv = 0.5*0.1*2/2 = 0.05 ; drift: dx = 0.1*0.05
        assert a.v[0, 0] == pytest.approx(0.05)
        assert a.x[0, 0] == pytest.approx(0.005)
        nve.final_integrate(a)
        assert a.v[0, 0] == pytest.approx(0.1)

    def test_ghosts_not_integrated(self):
        a = free_atoms(np.ones((2, 3)))
        a.append_ghosts(np.zeros((1, 3)), np.array([9]))
        nve = NVEIntegrator(dt=0.1)
        nve.initial_integrate(a)
        assert np.all(a.x[2] == 0.0)  # ghost untouched

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            NVEIntegrator(dt=0.0)
        with pytest.raises(ValueError):
            NVEIntegrator(dt=0.1, mass=-1.0)

    def test_harmonic_energy_conservation(self):
        """One particle on a spring: velocity Verlet conserves energy to
        O(dt^2) over many periods."""
        k = 1.0
        a = free_atoms(np.zeros((1, 3)))
        a.x[0] = [1.0, 0.0, 0.0]
        nve = NVEIntegrator(dt=0.01)

        def energy():
            return 0.5 * k * a.x[0, 0] ** 2 + 0.5 * a.v[0, 0] ** 2

        e0 = energy()
        for _ in range(5000):
            a.f[0, 0] = -k * a.x[0, 0]
            nve.initial_integrate(a)
            a.f[0, 0] = -k * a.x[0, 0]
            nve.final_integrate(a)
        assert energy() == pytest.approx(e0, rel=1e-4)


class TestThermo:
    def test_local_kinetic(self):
        th = Thermo(volume=100.0)
        a = free_atoms(np.array([[1.0, 0, 0], [0, 2.0, 0]]))
        assert th.local_kinetic(a) == pytest.approx(0.5 * (1 + 4))

    def test_reduce_sums_parts(self):
        s = Thermo.reduce(5, [1.0, 2.0], [3.0, 4.0], [6.0, 6.0], natoms=10, volume=100.0)
        assert s.kinetic == 3.0
        assert s.potential == 7.0
        assert s.virial == 12.0
        assert s.total_energy == 10.0
        assert s.step == 5

    def test_temperature_dof_convention(self):
        # T = 2 KE / (3N - 3)
        s = Thermo.reduce(0, [27.0], [0.0], [0.0], natoms=7, volume=1.0)
        assert s.temperature == pytest.approx(2 * 27.0 / (3 * 7 - 3))

    def test_pressure_ideal_gas_limit(self):
        # zero virial -> P = N k T / V
        s = Thermo.reduce(0, [15.0], [0.0], [0.0], natoms=11, volume=50.0)
        assert s.pressure == pytest.approx(11 * s.temperature / 50.0)

    def test_virial_contribution(self):
        s0 = Thermo.reduce(0, [15.0], [0.0], [0.0], natoms=11, volume=50.0)
        s1 = Thermo.reduce(0, [15.0], [0.0], [30.0], natoms=11, volume=50.0)
        assert s1.pressure - s0.pressure == pytest.approx(30.0 / (3 * 50.0))

    def test_invalid_volume(self):
        with pytest.raises(ValueError):
            Thermo(volume=0.0)


class TestStageTimers:
    def test_timing_accumulates(self):
        t = StageTimers()
        with t.timing(Stage.PAIR):
            pass
        with t.timing(Stage.PAIR):
            pass
        assert t.wall[Stage.PAIR] > 0
        assert t.total_wall() == pytest.approx(sum(t.wall.values()))

    def test_model_account(self):
        t = StageTimers()
        t.add_model(Stage.COMM, 1.5)
        t.add_model(Stage.COMM, 0.5)
        assert t.model[Stage.COMM] == 2.0
        with pytest.raises(ValueError):
            t.add_model(Stage.COMM, -1.0)

    def test_breakdown_percentages(self):
        t = StageTimers()
        t.add_model(Stage.PAIR, 3.0)
        t.add_model(Stage.COMM, 1.0)
        b = t.breakdown("model")
        assert b["Pair"] == (3.0, 75.0)
        assert b["Comm"] == (1.0, 25.0)

    def test_breakdown_empty(self):
        b = StageTimers().breakdown()
        assert all(pct == 0.0 for _, pct in b.values())

    def test_merge(self):
        a, b = StageTimers(), StageTimers()
        a.add_model(Stage.PAIR, 1.0)
        b.add_model(Stage.PAIR, 2.0)
        assert a.merged_with(b).model[Stage.PAIR] == 3.0

    def test_breakdown_rejects_unknown_account(self):
        t = StageTimers()
        with pytest.raises(ValueError, match="wall"):
            t.breakdown("walltime")
        with pytest.raises(ValueError):
            t.breakdown("")
