"""Stillinger-Weber three-body potential: forces, physics, parallelism.

SW is the repository's Tersoff-class potential — the full-neighbor-list
+ ghost-force case that motivates the paper's 26-neighbor extended
experiment (section 4.4).
"""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.md.atoms import Atoms
from repro.md.lattice import diamond_lattice, fcc_lattice, maxwell_velocities
from repro.md.neighbor import build_pairs
from repro.md.potentials import StillingerWeber

#: Reduced silicon lattice constant (5.431 A / 2.0951 A).
SI_A0 = 5.431 / 2.0951


def cluster(seed=3, cells=(2, 2, 2), edge=1.6, jitter=0.03):
    rng = np.random.default_rng(seed)
    x, box = fcc_lattice(cells, edge)
    x = x + rng.normal(0, jitter, x.shape)
    n = x.shape[0]
    atoms = Atoms()
    atoms.set_local(x, np.zeros((n, 3)), np.arange(n, dtype=np.int64))
    return atoms, x, n


class TestTripletEnumeration:
    def test_matches_bruteforce(self):
        """The cumsum triplet indexer equals nested loops over CSR rows."""
        sw = StillingerWeber()
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 4, size=(40, 3))
        i, j = build_pairs(x, 40, sw.cutoff, half=False)
        order = np.argsort(i, kind="stable")
        i_s, j_s = i[order], j[order]
        first = np.searchsorted(i_s, np.arange(41))
        c, a, b = sw._triplets(first, j_s, 40)
        got = set(zip(c.tolist(), a.tolist(), b.tolist()))
        want = set()
        for center in range(40):
            row = j_s[first[center] : first[center + 1]]
            for p in range(len(row)):
                for q in range(p + 1, len(row)):
                    want.add((center, int(row[p]), int(row[q])))
        assert got == want

    def test_isolated_atoms_no_triplets(self):
        sw = StillingerWeber()
        first = np.array([0, 0, 1], dtype=np.intp)  # one neighbor max
        c, a, b = sw._triplets(first, np.array([1], dtype=np.intp), 2)
        assert c.size == 0


class TestForces:
    def test_gradient_check(self):
        sw = StillingerWeber()
        atoms, x, n = cluster()

        def energy_of(flat):
            a = Atoms()
            a.set_local(flat.reshape(n, 3), np.zeros((n, 3)), np.arange(n, dtype=np.int64))
            i, j = build_pairs(a.x, n, sw.cutoff, half=False)
            return sw.compute(a, i, j, half_list=False).energy

        i, j = build_pairs(atoms.x, n, sw.cutoff, half=False)
        sw.compute(atoms, i, j, half_list=False)
        flat = x.ravel()
        h = 1e-6
        rng = np.random.default_rng(1)
        for k in rng.choice(len(flat), 10, replace=False):
            fp, fm = flat.copy(), flat.copy()
            fp[k] += h
            fm[k] -= h
            f_num = -(energy_of(fp) - energy_of(fm)) / (2 * h)
            assert atoms.f.ravel()[k] == pytest.approx(f_num, rel=1e-5, abs=1e-7)

    def test_total_force_zero(self):
        sw = StillingerWeber()
        atoms, _, n = cluster(seed=4)
        i, j = build_pairs(atoms.x, n, sw.cutoff, half=False)
        sw.compute(atoms, i, j, half_list=False)
        assert np.allclose(atoms.f.sum(axis=0), 0.0, atol=1e-11)

    def test_half_list_rejected(self):
        sw = StillingerWeber()
        atoms, _, n = cluster()
        i, j = build_pairs(atoms.x, n, sw.cutoff, half=True)
        with pytest.raises(ValueError, match="full neighbor list"):
            sw.compute(atoms, i, j, half_list=True)

    def test_flags(self):
        sw = StillingerWeber()
        assert sw.needs_full_list
        assert sw.force_ghosts
        assert sw.cutoff == pytest.approx(1.80)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StillingerWeber(epsilon=-1.0)


class TestSiliconPhysics:
    def test_diamond_cohesive_energy_is_two_eps(self):
        """SW's defining property: E/atom = -2 eps at the Si lattice
        constant (the parameterization was built to make this exact)."""
        x, box = diamond_lattice((3, 3, 3), SI_A0)
        cfg = SimulationConfig(dt=0.001, skin=0.3, pattern="p2p")
        sim = Simulation(x, np.zeros_like(x), box, StillingerWeber(), cfg, grid=(1, 1, 1))
        sim.setup()
        assert sim.sample_thermo().potential / x.shape[0] == pytest.approx(-2.0, abs=1e-6)

    def test_diamond_is_equilibrium(self):
        """Zero forces on the perfect lattice; compression/expansion raise
        the energy (it is a minimum)."""
        energies = {}
        for scale in (0.97, 1.0, 1.03):
            x, box = diamond_lattice((3, 3, 3), SI_A0 * scale)
            cfg = SimulationConfig(dt=0.001, skin=0.3, pattern="p2p")
            sim = Simulation(
                x, np.zeros_like(x), box, StillingerWeber(), cfg, grid=(1, 1, 1)
            )
            sim.setup()
            energies[scale] = sim.sample_thermo().potential
            if scale == 1.0:
                assert np.abs(sim.gather_forces()).max() < 1e-9
        assert energies[1.0] < energies[0.97]
        assert energies[1.0] < energies[1.03]


class TestParallel:
    def test_decompositions_agree(self):
        """Full shell + ghost-force reverse: every rank grid integrates
        the same trajectory (the communication case of section 4.4)."""
        x, box = diamond_lattice((3, 3, 3), SI_A0)
        v = maxwell_velocities(x.shape[0], 0.01, seed=6)
        positions = {}
        for grid in [(1, 1, 1), (2, 2, 1), (2, 2, 2)]:
            cfg = SimulationConfig(dt=0.002, skin=0.3, pattern="p2p", neighbor_every=5)
            sim = Simulation(x, v, box, StillingerWeber(), cfg, grid=grid)
            sim.run(10)
            positions[grid] = sim.gather_positions()
        base = positions[(1, 1, 1)]
        for grid, pos in positions.items():
            d = box.minimum_image(pos - base)
            assert np.abs(d).max() < 1e-10, grid

    def test_uses_full_shell_and_reverse(self):
        x, box = diamond_lattice((3, 3, 3), SI_A0)
        v = maxwell_velocities(x.shape[0], 0.01, seed=7)
        cfg = SimulationConfig(dt=0.002, skin=0.3, pattern="p2p")
        sim = Simulation(x, v, box, StillingerWeber(), cfg, grid=(2, 2, 1))
        sim.run(2)
        # 26-neighbor shell (full list) ...
        assert len(sim.exchange.recv_offsets) == 26
        # ... and the reverse stage runs despite newton-off lists.
        assert sim.world.transport.log.count("reverse") > 0

    def test_energy_conservation(self):
        x, box = diamond_lattice((3, 3, 3), SI_A0)
        v = maxwell_velocities(x.shape[0], 0.02, seed=8)
        cfg = SimulationConfig(dt=0.002, skin=0.3, pattern="p2p", neighbor_every=5)
        sim = Simulation(x, v, box, StillingerWeber(), cfg, grid=(2, 2, 1))
        sim.setup()
        e0 = sim.sample_thermo().total_energy
        sim.run(50)
        assert sim.sample_thermo().total_energy == pytest.approx(e0, rel=1e-5)
