"""LAMMPS-style log formatting and the command-line runner."""

import pytest

from repro.cli import build_parser, build_simulation, main
from repro.md.logfmt import (
    format_breakdown,
    format_performance,
    format_run_summary,
    format_thermo,
)
from repro.md.stages import Stage, StageTimers
from repro.md.thermo import ThermoSample


def sample(step=10):
    return ThermoSample(
        step=step, temperature=1.44, kinetic=10.0, potential=-50.0,
        virial=3.0, pressure=0.5, natoms=100,
    )


class TestThermoTable:
    def test_columns_present(self):
        text = format_thermo([sample()])
        for col in ("Step", "Temp", "TotEng", "Press"):
            assert col in text

    def test_one_row_per_sample(self):
        text = format_thermo([sample(1), sample(2), sample(3)])
        assert len(text.splitlines()) == 4  # header + 3


class TestPerformanceLine:
    def test_tau_per_day(self):
        # 100 steps of dt=0.005 in 1 s -> 0.5 tau/s -> 43200 tau/day
        text = format_performance(100, 1.0, natoms=1000, dt=0.005)
        assert "43200" in text
        assert "tau/day" in text

    def test_zero_steps_safe(self):
        assert "no steps" in format_performance(0, 1.0, 10, 0.005)


class TestBreakdown:
    def test_all_stages_listed(self):
        t = StageTimers()
        t.add_model(Stage.PAIR, 1.0)
        text = format_breakdown(t, which="model")
        for s in Stage:
            assert s.value in text
        assert "100.00%" in text

    def test_percentages(self):
        t = StageTimers()
        t.add_model(Stage.PAIR, 3.0)
        t.add_model(Stage.COMM, 1.0)
        text = format_breakdown(t, which="model")
        assert "75.00%" in text and "25.00%" in text


class TestCLI:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.potential == "lj"
        assert args.pattern == "parallel-p2p"

    def test_build_lj_simulation(self):
        args = build_parser().parse_args(
            ["--atoms", "500", "--nranks", "4", "--pattern", "p2p"]
        )
        sim = build_simulation(args)
        assert sim.natoms >= 500
        assert sim.world.size == 4

    def test_build_eam_simulation(self):
        args = build_parser().parse_args(
            ["--potential", "eam", "--atoms", "256", "--nranks", "2"]
        )
        sim = build_simulation(args)
        assert sim.config.neighbor_check  # Table 2 EAM policy

    def test_explicit_rank_grid(self):
        args = build_parser().parse_args(
            ["--atoms", "500", "--ranks", "2", "1", "1"]
        )
        sim = build_simulation(args)
        assert sim.grid == (2, 1, 1)

    def test_end_to_end_run(self, capsys):
        rc = main(
            [
                "--atoms", "256", "--steps", "5", "--nranks", "2",
                "--pattern", "p2p", "--rdma", "--model-time", "--thermo", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Performance:" in out
        assert "MPI task timing breakdown" in out
        assert "Simulated Fugaku communication time" in out

    def test_run_summary_format(self):
        from repro import quick_lj_simulation

        sim = quick_lj_simulation(
            cells=(3, 3, 3), ranks=(1, 1, 1), thermo_every=5
        )
        sim.run(10)
        text = format_run_summary(sim)
        assert "Performance:" in text
        assert "Pair" in text


class TestObservabilityFlags:
    ARGS = ["--atoms", "256", "--steps", "3", "--nranks", "2"]

    def test_invalid_trace_path_rejected_before_run(self, tmp_path, capsys):
        missing_dir = tmp_path / "no" / "such" / "dir" / "t.json"
        rc = main([*self.ARGS, "--trace", str(missing_dir)])
        assert rc == 2
        out = capsys.readouterr().out
        assert "cannot write trace file" in out
        # Fail-fast: the run itself never started, so no log header.
        assert "# repro:" not in out

    def test_trace_file_validates(self, tmp_path, capsys):
        from repro.obs.export import validate_chrome_trace_file

        path = tmp_path / "t.json"
        rc = main([*self.ARGS, "--trace", str(path)])
        assert rc == 0
        assert validate_chrome_trace_file(str(path)) > 0
        out = capsys.readouterr().out
        assert "Span-derived stage breakdown" in out

    def test_metrics_flag_prints_report(self, capsys):
        rc = main([*self.ARGS, "--metrics"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "metrics report:" in out
        assert "messages_total" in out

    def test_selfcheck_composes_with_trace(self, tmp_path, capsys):
        from repro.obs.export import validate_chrome_trace_file

        path = tmp_path / "sc.json"
        rc = main(["--selfcheck", "--trace", str(path)])
        assert rc == 0
        assert validate_chrome_trace_file(str(path)) > 0
        out = capsys.readouterr().out
        assert "repro self-check:" in out
        assert "# trace:" in out
