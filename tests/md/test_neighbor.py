"""Neighbor-list tests: binned builder vs brute force, half/full rules,
rebuild policies."""

import numpy as np
import pytest

from repro.md import NeighborList, NeighborSettings, build_pairs
from repro.md.neighbor import build_pairs_bruteforce


def pair_set(i, j):
    return {(int(a), int(b)) for a, b in zip(i, j)}


def random_system(n, nlocal, seed, span=10.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, span, size=(n, 3)), nlocal


class TestBinnedVsBruteForce:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("half", [True, False])
    def test_matches_bruteforce_random(self, seed, half):
        x, nlocal = random_system(300, 200, seed)
        got = pair_set(*build_pairs(x, nlocal, 1.5, half=half))
        want = pair_set(*build_pairs_bruteforce(x, nlocal, 1.5, half=half))
        assert got == want

    @pytest.mark.parametrize("rule", ["all", "coord"])
    def test_ghost_rules_match_bruteforce(self, rule):
        x, nlocal = random_system(250, 150, 7)
        got = pair_set(*build_pairs(x, nlocal, 2.0, half=True, ghost_rule=rule))
        want = pair_set(
            *build_pairs_bruteforce(x, nlocal, 2.0, half=True, ghost_rule=rule)
        )
        assert got == want

    def test_large_cutoff_single_cell(self):
        x, nlocal = random_system(60, 60, 3, span=2.0)
        got = pair_set(*build_pairs(x, nlocal, 5.0))
        want = pair_set(*build_pairs_bruteforce(x, nlocal, 5.0))
        assert got == want

    def test_tiny_cutoff(self):
        x, nlocal = random_system(500, 500, 4)
        got = pair_set(*build_pairs(x, nlocal, 0.3))
        want = pair_set(*build_pairs_bruteforce(x, nlocal, 0.3))
        assert got == want


class TestPairProperties:
    def test_i_always_local(self):
        x, nlocal = random_system(200, 120, 5)
        i, j = build_pairs(x, nlocal, 2.0, half=False)
        assert np.all(i < nlocal)

    def test_distances_below_cutoff(self):
        x, nlocal = random_system(200, 150, 6)
        i, j = build_pairs(x, nlocal, 1.8)
        d = x[i] - x[j]
        assert np.all(np.einsum("ij,ij->i", d, d) < 1.8**2)

    def test_no_self_pairs(self):
        x, nlocal = random_system(100, 100, 8)
        i, j = build_pairs(x, nlocal, 3.0, half=False)
        assert np.all(i != j)

    def test_half_local_pairs_unique(self):
        x, nlocal = random_system(150, 150, 9)
        i, j = build_pairs(x, nlocal, 2.0, half=True)
        assert np.all(i < j)  # all-local: i<j rule
        assert len(pair_set(i, j)) == len(i)

    def test_full_list_is_symmetric_on_locals(self):
        x, nlocal = random_system(100, 100, 10)
        pairs = pair_set(*build_pairs(x, nlocal, 2.0, half=False))
        assert all((b, a) in pairs for a, b in pairs)

    def test_full_has_twice_half_for_all_local(self):
        x, nlocal = random_system(120, 120, 11)
        nh = build_pairs(x, nlocal, 2.0, half=True)[0].size
        nf = build_pairs(x, nlocal, 2.0, half=False)[0].size
        assert nf == 2 * nh

    def test_coord_rule_partitions_ghost_pairs(self):
        """'coord' keeps exactly one orientation of each local-ghost pair
        relative to keeping all of them."""
        x, nlocal = random_system(200, 100, 12)
        all_g = build_pairs(x, nlocal, 2.5, half=True, ghost_rule="all")
        coord_g = build_pairs(x, nlocal, 2.5, half=True, ghost_rule="coord")
        n_ghost_all = int((all_g[1] >= nlocal).sum())
        n_ghost_coord = int((coord_g[1] >= nlocal).sum())
        assert 0 < n_ghost_coord < n_ghost_all

    def test_empty_inputs(self):
        i, j = build_pairs(np.zeros((1, 3)), 1, 1.0)
        assert i.size == 0
        i, j = build_pairs(np.zeros((5, 3)), 0, 1.0)
        assert i.size == 0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            build_pairs(np.zeros((5, 3)), 6, 1.0)
        with pytest.raises(ValueError):
            build_pairs(np.zeros((5, 3)), 5, -1.0)
        with pytest.raises(ValueError):
            build_pairs(np.zeros((5, 3)), 5, 1.0, ghost_rule="bogus")


class TestNeighborList:
    def settings(self, **kw):
        defaults = dict(cutoff=1.5, skin=0.5)
        defaults.update(kw)
        return NeighborSettings(**defaults)

    def test_r_comm(self):
        assert self.settings().r_comm == 2.0

    def test_build_counts(self):
        x, nlocal = random_system(100, 100, 13)
        nl = NeighborList(self.settings())
        nl.build(x, nlocal)
        assert nl.builds == 1
        assert nl.n_pairs == build_pairs(x, nlocal, 2.0)[0].size

    def test_displacement_tracking(self):
        x, nlocal = random_system(50, 50, 14)
        nl = NeighborList(self.settings(skin=1.0))
        nl.build(x, nlocal)
        assert not nl.needs_rebuild(x[:nlocal])  # nothing moved
        moved = x[:nlocal].copy()
        moved[0] += 0.6  # > skin/2 = 0.5
        assert nl.needs_rebuild(moved)

    def test_displacement_below_half_skin_ok(self):
        x, nlocal = random_system(50, 50, 15)
        nl = NeighborList(self.settings(skin=1.0))
        nl.build(x, nlocal)
        moved = x[:nlocal] + 0.2  # |d| = 0.35 < 0.5
        assert not nl.needs_rebuild(moved)

    def test_unbuilt_list_always_needs_rebuild(self):
        nl = NeighborList(self.settings())
        assert nl.needs_rebuild(np.zeros((3, 3)))

    def test_changed_local_count_forces_rebuild(self):
        x, nlocal = random_system(50, 50, 16)
        nl = NeighborList(self.settings())
        nl.build(x, nlocal)
        assert nl.needs_rebuild(x[:30])


class TestPerAtomView:
    def _built(self, half=True, seed=20):
        x, nlocal = random_system(150, 150, seed)
        nl = NeighborList(NeighborSettings(cutoff=1.5, skin=0.5, half=half))
        nl.build(x, nlocal)
        return x, nlocal, nl

    def test_csr_covers_all_pairs(self):
        x, nlocal, nl = self._built()
        first, neigh = nl.per_atom(nlocal)
        assert first[0] == 0
        assert first[-1] == nl.n_pairs
        rebuilt = set()
        for i in range(nlocal):
            for j in neigh[first[i] : first[i + 1]]:
                rebuilt.add((i, int(j)))
        assert rebuilt == set(zip(nl.pair_i.tolist(), nl.pair_j.tolist()))

    def test_csr_rows_monotone(self):
        x, nlocal, nl = self._built(half=False)
        first, _ = nl.per_atom(nlocal)
        assert np.all(np.diff(first) >= 0)

    def test_coordination_full_equals_direct_count(self):
        x, nlocal, nl = self._built(half=False)
        coord = nl.coordination(nlocal)
        assert coord.sum() == nl.n_pairs
        # spot-check atom 0 against brute force
        d = x - x[0]
        r2 = np.einsum("ij,ij->i", d, d)
        expect = int(((r2 < 2.0**2) & (r2 > 0)).sum())
        assert coord[0] == expect

    def test_half_and_full_coordination_agree(self):
        """Counting both pair endpoints of a half list equals the full
        list's per-atom counts (all-local system)."""
        x, nlocal = random_system(120, 120, 21)
        half_nl = NeighborList(NeighborSettings(cutoff=1.5, skin=0.5, half=True))
        half_nl.build(x, nlocal)
        full_nl = NeighborList(NeighborSettings(cutoff=1.5, skin=0.5, half=False))
        full_nl.build(x, nlocal)
        assert np.array_equal(
            half_nl.coordination(nlocal), full_nl.coordination(nlocal)
        )
