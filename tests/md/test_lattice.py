"""FCC lattice generation tests (Table 2 configurations)."""

import numpy as np
import pytest

from repro.md import fcc_lattice, fcc_box_for_atoms, lj_density_to_cell
from repro.md.lattice import maxwell_velocities


class TestCellEdge:
    def test_lj_benchmark_density(self):
        # rho* = 0.8442 -> cell edge (4/rho)^(1/3) = 1.6796 sigma
        assert lj_density_to_cell(0.8442) == pytest.approx(1.6796, abs=1e-4)

    def test_density_roundtrip(self):
        edge = lj_density_to_cell(0.5)
        assert 4.0 / edge**3 == pytest.approx(0.5)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            lj_density_to_cell(0.0)


class TestLattice:
    def test_atom_count(self):
        x, _ = fcc_lattice((3, 4, 5), 1.0)
        assert x.shape == (4 * 60, 3)

    def test_box_tiles_exactly(self):
        x, box = fcc_lattice((2, 3, 4), 3.615)
        assert np.allclose(box.lengths, [2 * 3.615, 3 * 3.615, 4 * 3.615])
        assert np.all(box.contains(x))

    def test_density_correct(self):
        rho = 0.8442
        x, box = fcc_lattice((4, 4, 4), lj_density_to_cell(rho))
        assert x.shape[0] / box.volume == pytest.approx(rho)

    def test_nearest_neighbor_distance(self):
        """FCC nearest-neighbor distance is edge / sqrt(2)."""
        edge = 3.615
        x, box = fcc_lattice((3, 3, 3), edge)
        d = box.minimum_image(x[None, 0, :] - x[1:])
        r = np.sqrt(np.einsum("ij,ij->i", d, d))
        assert r.min() == pytest.approx(edge / np.sqrt(2), rel=1e-9)

    def test_no_duplicate_positions(self):
        x, _ = fcc_lattice((3, 3, 3), 1.0)
        assert len({tuple(np.round(p, 9)) for p in x}) == x.shape[0]

    def test_invalid_cells(self):
        with pytest.raises(ValueError):
            fcc_lattice((0, 1, 1), 1.0)


class TestSizing:
    def test_fcc_box_for_atoms_covers_request(self):
        for n in (4, 100, 65_536, 1_000_003):
            cells = fcc_box_for_atoms(n)
            assert 4 * cells[0] * cells[1] * cells[2] >= n

    def test_paper_65k_system(self):
        cells = fcc_box_for_atoms(65_536)
        assert cells == (26, 26, 26)  # 70304 atoms, nearest cube >= 65536

    def test_too_small(self):
        with pytest.raises(ValueError):
            fcc_box_for_atoms(3)


class TestVelocities:
    def test_zero_net_momentum(self):
        v = maxwell_velocities(500, 1.44)
        assert np.allclose(v.mean(axis=0), 0.0, atol=1e-12)

    def test_temperature_roughly_right(self):
        v = maxwell_velocities(20_000, 2.0, seed=3)
        t_measured = (v**2).sum() / (3 * 20_000)
        assert t_measured == pytest.approx(2.0, rel=0.05)

    def test_reproducible(self):
        assert np.array_equal(
            maxwell_velocities(10, 1.0, seed=5), maxwell_velocities(10, 1.0, seed=5)
        )

    def test_seed_changes_draw(self):
        assert not np.array_equal(
            maxwell_velocities(10, 1.0, seed=5), maxwell_velocities(10, 1.0, seed=6)
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            maxwell_velocities(0, 1.0)


class TestDiamondLattice:
    def test_atom_count_is_8_per_cell(self):
        from repro.md.lattice import diamond_lattice

        x, box = diamond_lattice((3, 3, 3), 2.0)
        assert x.shape == (8 * 27, 3)

    def test_tetrahedral_coordination(self):
        """Diamond: every atom has 4 nearest neighbors at sqrt(3)/4 a0."""
        from repro.md.lattice import diamond_lattice

        a0 = 2.0
        x, box = diamond_lattice((3, 3, 3), a0)
        d = box.minimum_image(x[None, 0, :] - x[1:])
        r = np.sqrt(np.einsum("ij,ij->i", d, d))
        r_nn = a0 * np.sqrt(3) / 4
        assert np.isclose(r.min(), r_nn)
        assert int(np.isclose(r, r_nn).sum()) == 4

    def test_positions_wrapped(self):
        from repro.md.lattice import diamond_lattice

        x, box = diamond_lattice((2, 2, 2), 1.5)
        assert box.contains(x).all()

    def test_no_duplicates(self):
        from repro.md.lattice import diamond_lattice

        x, _ = diamond_lattice((2, 2, 2), 1.0)
        assert len({tuple(np.round(p, 9)) for p in x}) == x.shape[0]
