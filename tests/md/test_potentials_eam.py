"""EAM potential: functional forms, two-pass structure, tabulated splines."""

import numpy as np
import pytest

from repro.md import Atoms, make_cu_like_eam
from repro.md.neighbor import build_pairs
from repro.md.potentials import SuttonChenEAM
from repro.md.potentials.eam import _smoothstep_cut


@pytest.fixture
def sc():
    return SuttonChenEAM(cutoff=4.95)


def cluster(n=8, seed=0, spread=5.0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, spread, size=(n, 3)) + np.arange(n)[:, None] * 0.01
    atoms = Atoms()
    atoms.set_local(x, np.zeros((n, 3)), np.arange(n, dtype=np.int64))
    return atoms


class TestSmoothstep:
    def test_endpoints(self):
        s, ds = _smoothstep_cut(1.0, 2.0)
        assert s(np.array([0.5]))[0] == 1.0
        assert s(np.array([2.5]))[0] == 0.0
        assert s(np.array([1.5]))[0] == pytest.approx(0.5)

    def test_derivative_matches_numeric(self):
        s, ds = _smoothstep_cut(1.0, 2.0)
        r = np.linspace(1.05, 1.95, 7)
        h = 1e-7
        numeric = (s(r + h) - s(r - h)) / (2 * h)
        assert np.allclose(ds(r), numeric, atol=1e-5)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            _smoothstep_cut(2.0, 1.0)


class TestFunctionalForms:
    def test_phi_positive_and_decaying(self, sc):
        r = np.array([2.0, 2.5, 3.0])
        phi = sc.phi(r)
        assert np.all(phi > 0)
        assert phi[0] > phi[1] > phi[2]

    def test_phi_vanishes_at_cutoff(self, sc):
        assert sc.phi(np.array([4.95]))[0] == pytest.approx(0.0, abs=1e-12)
        assert sc.rho(np.array([4.95]))[0] == pytest.approx(0.0, abs=1e-12)

    def test_embedding_negative_and_concave(self, sc):
        rho = np.array([1.0, 2.0, 9.0])
        F = sc.embed(rho)
        assert np.all(F < 0)  # cohesion
        # F = -c' sqrt(rho): doubling rho does not double |F|
        assert abs(F[1]) < 2 * abs(F[0]) * 0.99

    def test_dembed_matches_numeric(self, sc):
        rho = np.array([0.5, 2.0, 8.0])
        h = 1e-7
        numeric = (sc.embed(rho + h) - sc.embed(rho - h)) / (2 * h)
        assert np.allclose(sc.dembed(rho), numeric, rtol=1e-5)

    def test_dphi_matches_numeric(self, sc):
        r = np.linspace(2.2, 4.8, 9)
        h = 1e-7
        numeric = (sc.phi(r + h) - sc.phi(r - h)) / (2 * h)
        assert np.allclose(sc.dphi(r), numeric, atol=1e-8)

    def test_drho_matches_numeric(self, sc):
        r = np.linspace(2.2, 4.8, 9)
        h = 1e-7
        numeric = (sc.rho(r + h) - sc.rho(r - h)) / (2 * h)
        assert np.allclose(sc.drho(r), numeric, atol=1e-6)


class TestCompute:
    def test_forces_match_numerical_gradient(self, sc):
        """Full-system gradient check: f = -dU/dx for every coordinate."""
        atoms = cluster(6, seed=1, spread=4.0)
        n = atoms.nlocal

        def total_energy(flat):
            a = Atoms()
            a.set_local(flat.reshape(n, 3), np.zeros((n, 3)), np.arange(n, dtype=np.int64))
            i, j = build_pairs(a.x, n, sc.cutoff)
            return sc.compute(a, i, j).energy

        i, j = build_pairs(atoms.x, n, sc.cutoff)
        sc.compute(atoms, i, j)
        f_analytic = atoms.f[:n].copy()

        flat = atoms.x[:n].ravel().copy()
        h = 1e-6
        for k in range(len(flat)):
            fp = flat.copy()
            fm = flat.copy()
            fp[k] += h
            fm[k] -= h
            f_num = -(total_energy(fp) - total_energy(fm)) / (2 * h)
            assert f_analytic.ravel()[k] == pytest.approx(f_num, rel=1e-4, abs=1e-5)

    def test_newton_total_force_zero(self, sc):
        atoms = cluster(10, seed=2)
        i, j = build_pairs(atoms.x, 10, sc.cutoff)
        sc.compute(atoms, i, j)
        assert np.allclose(atoms.f.sum(axis=0), 0.0, atol=1e-10)

    def test_half_and_full_list_agree(self, sc):
        a1 = cluster(12, seed=3)
        i, j = build_pairs(a1.x, 12, sc.cutoff, half=True)
        r1 = sc.compute(a1, i, j, half_list=True)

        a2 = cluster(12, seed=3)
        i, j = build_pairs(a2.x, 12, sc.cutoff, half=False)
        r2 = sc.compute(a2, i, j, half_list=False)

        assert r1.energy == pytest.approx(r2.energy)
        assert r1.virial == pytest.approx(r2.virial)
        assert np.allclose(a1.f[:12], a2.f[:12])

    def test_comm_call_counts(self, sc):
        """Half list needs reverse+forward; full list only forward —
        the paper's 'two additional communications'."""
        atoms = cluster(8, seed=4)
        i, j = build_pairs(atoms.x, 8, sc.cutoff, half=True)
        assert sc.compute(atoms, i, j, half_list=True).comm_calls == 2
        atoms = cluster(8, seed=4)
        i, j = build_pairs(atoms.x, 8, sc.cutoff, half=False)
        assert sc.compute(atoms, i, j, half_list=False).comm_calls == 1

    def test_embedding_energy_reported(self, sc):
        atoms = cluster(8, seed=5)
        i, j = build_pairs(atoms.x, 8, sc.cutoff)
        res = sc.compute(atoms, i, j)
        assert res.extra["embedding_energy"] < 0
        assert res.energy > res.extra["embedding_energy"]  # pair part positive

    def test_isolated_atoms_zero_everything(self, sc):
        atoms = Atoms()
        atoms.set_local(
            np.array([[0.0, 0, 0], [100.0, 0, 0]]), np.zeros((2, 3)), np.array([0, 1])
        )
        i, j = build_pairs(atoms.x, 2, sc.cutoff)
        res = sc.compute(atoms, i, j)
        assert res.energy == 0.0
        assert np.all(atoms.f == 0.0)


class TestPhasedAPI:
    def test_phases_equal_monolithic(self, sc):
        a1 = cluster(10, seed=6)
        i, j = build_pairs(a1.x, 10, sc.cutoff)
        r1 = sc.compute(a1, i, j)

        a2 = cluster(10, seed=6)
        i, j = build_pairs(a2.x, 10, sc.cutoff)
        scratch = sc.density_pass(a2, i, j, half_list=True)
        sc.embedding_pass(a2, scratch)
        r2 = sc.force_pass(a2, scratch)

        assert r1.energy == pytest.approx(r2.energy)
        assert np.allclose(a1.f, a2.f)


class TestTabulated:
    def test_matches_analytic_forces(self, sc):
        """Spline tables agree with the analytic forms at physical
        separations (the table floor is 0.5 A, far below any real pair)."""
        tab = make_cu_like_eam(cutoff=4.95)
        from repro.md import fcc_lattice

        x, _ = fcc_lattice((2, 2, 2), 3.615)
        rng = np.random.default_rng(7)
        x = x + rng.normal(0, 0.05, size=x.shape)
        n = x.shape[0]

        def atoms():
            a = Atoms()
            a.set_local(x, np.zeros((n, 3)), np.arange(n, dtype=np.int64))
            return a

        a1, a2 = atoms(), atoms()
        i, j = build_pairs(x, n, 4.95)
        e1 = sc.compute(a1, i, j).energy
        e2 = tab.compute(a2, i, j).energy
        assert e2 == pytest.approx(e1, rel=1e-6)
        assert np.allclose(a1.f, a2.f, rtol=1e-6, atol=1e-8)

    def test_clamping_outside_table(self):
        tab = make_cu_like_eam()
        # below r_min and above cutoff must not blow up
        assert np.isfinite(tab.phi(np.array([0.1]))[0])
        assert tab.phi(np.array([10.0]))[0] == pytest.approx(0.0, abs=1e-10)

    def test_invalid_cutoff(self):
        with pytest.raises(ValueError):
            SuttonChenEAM(cutoff=-1.0)
