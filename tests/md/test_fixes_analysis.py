"""Thermostat fixes and trajectory-analysis tools."""

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig, quick_lj_simulation
from repro.md import Box
from repro.md.analysis import MSDTracker, radial_distribution, structure_order_parameter
from repro.md.fixes import Langevin, VelocityRescale
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities


class TestVelocityRescale:
    def test_drives_to_target(self):
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 2),
                                  temperature=2.5, seed=50)
        sim.fixes.append(VelocityRescale(t_target=0.7, every=1))
        sim.run(30)
        assert sim.sample_thermo().temperature == pytest.approx(0.7, abs=0.05)

    def test_window_suppresses_rescale(self):
        fix = VelocityRescale(t_target=1.0, window=10.0)
        sim = quick_lj_simulation(cells=(3, 3, 3), ranks=(1, 1, 1), seed=51)
        sim.fixes.append(fix)
        sim.run(5)
        assert fix.rescale_count == 0

    def test_momentum_preserved(self):
        """Rescaling is a uniform scale: zero net momentum stays zero."""
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 2), seed=52)
        sim.fixes.append(VelocityRescale(t_target=0.5))
        sim.run(10)
        assert np.allclose(sim.gather_velocities().sum(axis=0), 0.0, atol=1e-9)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            VelocityRescale(t_target=-1.0)
        with pytest.raises(ValueError):
            VelocityRescale(t_target=1.0, fraction=0.0)
        with pytest.raises(ValueError):
            VelocityRescale(t_target=1.0, every=0)


class TestLangevin:
    def test_equilibrates_to_target(self):
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 2),
                                  temperature=0.1, seed=53)
        sim.fixes.append(Langevin(t_target=1.2, damp=0.1, dt=0.005, seed=9))
        sim.run(80)
        # Stochastic: generous band around the target.
        assert 0.9 < sim.sample_thermo().temperature < 1.6

    def test_deterministic_across_patterns(self):
        """The (seed, step, rank) noise stream makes Langevin runs agree
        between communication patterns."""
        temps = {}
        for pattern in ("3stage", "p2p"):
            sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 2),
                                      pattern=pattern, seed=54)
            sim.fixes.append(Langevin(t_target=1.0, damp=0.2, dt=0.005, seed=3))
            sim.run(20)
            temps[pattern] = sim.sample_thermo().temperature
        assert temps["3stage"] == pytest.approx(temps["p2p"], rel=1e-10)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            Langevin(t_target=1.0, damp=-1.0, dt=0.005)


class TestRadialDistribution:
    @pytest.fixture(scope="class")
    def melt(self):
        sim = quick_lj_simulation(cells=(5, 5, 5), ranks=(2, 2, 2),
                                  temperature=1.44, seed=55, neighbor_every=10)
        sim.run(60)
        return sim

    def test_crystal_vs_liquid_structure(self, melt):
        edge = lj_density_to_cell(0.8442)
        x_cryst, box = fcc_lattice((5, 5, 5), edge)
        r, g_cryst = radial_distribution(x_cryst, box, r_max=3.0)
        _, g_liquid = radial_distribution(melt.gather_positions(), melt.box, r_max=3.0)
        s_cryst = structure_order_parameter(g_cryst)
        s_liq = structure_order_parameter(g_liquid)
        assert s_cryst > 3 * s_liq  # crystal peaks dwarf liquid structure

    def test_liquid_first_peak_near_sigma(self, melt):
        r, g = radial_distribution(melt.gather_positions(), melt.box, r_max=3.0)
        peak_r = r[np.argmax(g)]
        assert 0.95 < peak_r < 1.35  # LJ liquid: ~1.1 sigma

    def test_gr_vanishes_inside_core(self, melt):
        r, g = radial_distribution(melt.gather_positions(), melt.box, r_max=3.0)
        assert g[r < 0.8].max(initial=0.0) < 0.1

    def test_gr_normalizes_to_one_at_range(self, melt):
        r, g = radial_distribution(melt.gather_positions(), melt.box, r_max=3.0)
        assert g[-10:].mean() == pytest.approx(1.0, abs=0.25)

    def test_input_validation(self):
        box = Box((0, 0, 0), (4, 4, 4))
        with pytest.raises(ValueError):
            radial_distribution(np.zeros((1, 3)), box, r_max=1.0)
        with pytest.raises(ValueError):
            radial_distribution(np.zeros((10, 3)), box, r_max=3.0)


class TestMSD:
    def test_static_system_zero_msd(self):
        box = Box((0, 0, 0), (10, 10, 10))
        x = np.random.default_rng(0).uniform(0, 10, (20, 3))
        tracker = MSDTracker(x, box)
        assert tracker.update(1, x) == 0.0

    def test_unwrapping_across_boundary(self):
        """An atom crossing the periodic boundary accumulates real
        displacement, not a box-length jump."""
        box = Box((0, 0, 0), (10, 10, 10))
        x = np.array([[9.9, 5.0, 5.0]])
        tracker = MSDTracker(x, box)
        tracker.update(1, np.array([[0.1, 5.0, 5.0]]))  # wrapped +0.2
        assert tracker.samples[-1][1] == pytest.approx(0.04, rel=1e-9)

    def test_liquid_diffuses(self):
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 2),
                                  temperature=1.44, seed=56, neighbor_every=10)
        sim.setup()
        tracker = MSDTracker(sim.gather_positions(), sim.box)
        for k in range(4):
            sim.run(10)
            tracker.update(sim.step_count, sim.gather_positions())
        msds = [m for _, m in tracker.samples]
        assert msds[-1] > msds[0] > 0
        assert tracker.diffusion_estimate(0.005) > 0
