"""Box / sub-box geometry: wrapping, minimum image, border masks."""

import numpy as np
import pytest

from repro.md import Box, SubBox


@pytest.fixture
def box():
    return Box((0.0, 0.0, 0.0), (10.0, 20.0, 30.0))


@pytest.fixture
def sub():
    # middle sub-box of a 3x3x3 grid over a 30-cube
    return SubBox((10.0, 10.0, 10.0), (20.0, 20.0, 20.0), (1, 1, 1), (3, 3, 3))


class TestBox:
    def test_lengths_volume(self, box):
        assert np.array_equal(box.lengths, [10, 20, 30])
        assert box.volume == 6000.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Box((0, 0, 0), (1, 0, 1))

    def test_wrap(self, box):
        x = np.array([[12.0, -1.0, 31.0]])
        assert np.allclose(box.wrap(x), [[2.0, 19.0, 1.0]])

    def test_wrap_identity_inside(self, box):
        x = np.array([[5.0, 5.0, 5.0]])
        assert np.allclose(box.wrap(x), x)

    def test_minimum_image(self, box):
        dx = np.array([[9.0, 0.0, 0.0]])
        assert np.allclose(box.minimum_image(dx), [[-1.0, 0.0, 0.0]])

    def test_minimum_image_bound(self, box):
        rng = np.random.default_rng(1)
        dx = rng.uniform(-50, 50, size=(100, 3))
        mi = box.minimum_image(dx)
        assert np.all(np.abs(mi) <= box.lengths / 2 + 1e-12)

    def test_contains(self, box):
        assert box.contains(np.array([5.0, 5.0, 5.0]))
        assert not box.contains(np.array([10.0, 5.0, 5.0]))  # hi-exclusive


class TestBorderMask:
    def test_face_offset(self, sub):
        x = np.array([[19.5, 15, 15], [15, 15, 15]])
        mask = sub.border_mask(x, (1, 0, 0), rcomm=1.0)
        assert list(mask) == [True, False]

    def test_negative_face(self, sub):
        x = np.array([[10.5, 15, 15], [12, 15, 15]])
        mask = sub.border_mask(x, (-1, 0, 0), rcomm=1.0)
        assert list(mask) == [True, False]

    def test_corner_is_intersection(self, sub):
        x = np.array(
            [
                [19.5, 19.5, 19.5],  # corner
                [19.5, 19.5, 15.0],  # edge only
            ]
        )
        mask = sub.border_mask(x, (1, 1, 1), rcomm=1.0)
        assert list(mask) == [True, False]

    def test_zero_offset_axis_accepts_anything(self, sub):
        x = np.array([[19.5, 10.1, 19.9]])
        assert sub.border_mask(x, (1, 0, 0), rcomm=1.0)[0]

    def test_radius2_shell_empty_when_cutoff_small(self, sub):
        x = np.array([[19.9, 15, 15]])
        assert not sub.border_mask(x, (2, 0, 0), rcomm=1.0).any()

    def test_radius2_shell_nonempty_for_long_cutoff(self, sub):
        # rcomm = 12 > sub-box edge 10: depth into the +2 neighbor is 2.
        x = np.array([[18.5, 15, 15], [17.0, 15, 15]])
        mask = sub.border_mask(x, (2, 0, 0), rcomm=12.0)
        assert list(mask) == [True, False]

    def test_volume_of_regions_matches_table1(self, sub):
        """Monte-Carlo check: face/edge/corner region fractions follow
        a^2 r, a r^2, r^3 (Table 1)."""
        rng = np.random.default_rng(42)
        n = 200_000
        x = rng.uniform(10.0, 20.0, size=(n, 3))
        a, r = 10.0, 1.5
        face = sub.border_mask(x, (1, 0, 0), r).mean() * a**3
        edge = sub.border_mask(x, (1, 1, 0), r).mean() * a**3
        corner = sub.border_mask(x, (1, 1, 1), r).mean() * a**3
        assert face == pytest.approx(a * a * r, rel=0.05)
        assert edge == pytest.approx(a * r * r, rel=0.05)
        assert corner == pytest.approx(r**3, rel=0.15)


class TestGhostShift:
    def test_interior_no_shift(self, sub):
        box = Box((0, 0, 0), (30, 30, 30))
        assert np.array_equal(sub.ghost_shift((1, 0, 0), box), [0, 0, 0])

    def test_wrap_high_side(self):
        box = Box((0, 0, 0), (30, 30, 30))
        edge_sub = SubBox((20, 0, 0), (30, 10, 10), (2, 0, 0), (3, 3, 3))
        # neighbor at +x wraps to grid 0 -> its atoms appear shifted +30
        assert np.array_equal(edge_sub.ghost_shift((1, 0, 0), box), [30, 0, 0])

    def test_wrap_low_side(self):
        box = Box((0, 0, 0), (30, 30, 30))
        edge_sub = SubBox((0, 0, 0), (10, 10, 10), (0, 0, 0), (3, 3, 3))
        assert np.array_equal(edge_sub.ghost_shift((-1, 0, 0), box), [-30, 0, 0])

    def test_single_rank_both_shifts(self):
        """1-wide grids wrap in both directions onto the same rank."""
        box = Box((0, 0, 0), (10, 10, 10))
        solo = SubBox((0, 0, 0), (10, 10, 10), (0, 0, 0), (1, 1, 1))
        assert np.array_equal(solo.ghost_shift((1, 0, 0), box), [10, 0, 0])
        assert np.array_equal(solo.ghost_shift((-1, 0, 0), box), [-10, 0, 0])

    def test_contains(self, sub):
        assert sub.contains(np.array([15.0, 15.0, 15.0]))
        assert not sub.contains(np.array([20.0, 15.0, 15.0]))
