"""The serial minimum-image reference engine in its own right."""

import numpy as np
import pytest

from repro import LennardJones, SerialReference
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.md.potentials import SuttonChenEAM


def lj_melt(cells=(4, 4, 4), t=1.44, seed=1):
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice(cells, edge)
    v = maxwell_velocities(x.shape[0], t, seed=seed)
    return x, v, box


class TestConstruction:
    def test_cutoff_must_fit_half_box(self):
        x, v, box = lj_melt(cells=(2, 2, 2))  # box edge ~3.36
        with pytest.raises(ValueError, match="half the box edge"):
            SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)

    def test_shape_validation(self):
        x, v, box = lj_melt()
        with pytest.raises(ValueError):
            SerialReference(x[:10], v, box, LennardJones(), dt=0.005)

    def test_initial_forces_computed(self):
        x, v, box = lj_melt()
        ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
        assert ref.f.shape == x.shape
        assert np.allclose(ref.f.sum(axis=0), 0.0, atol=1e-10)


class TestPhysics:
    def test_lattice_energy_per_atom_reasonable(self):
        """FCC LJ at rho*=0.8442 has cohesive energy ~ -7.4 eps/atom
        (truncated at 2.5 sigma: somewhat shallower)."""
        x, _, box = lj_melt(t=0.0)
        ref = SerialReference(x, np.zeros_like(x), box, LennardJones(cutoff=2.5), dt=0.005)
        e_per_atom = ref.energy / x.shape[0]
        assert -8.0 < e_per_atom < -5.0

    def test_energy_conservation(self):
        x, v, box = lj_melt(t=0.8, seed=2)
        ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.002)
        e0 = ref.sample_thermo().total_energy
        ref.run(100)
        assert ref.sample_thermo().total_energy == pytest.approx(e0, rel=2e-3)  # truncated LJ jumps at the cutoff

    def test_momentum_conserved(self):
        x, v, box = lj_melt(seed=3)
        ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
        ref.run(50)
        assert np.allclose(ref.v.sum(axis=0), 0.0, atol=1e-10)

    def test_positions_stay_wrapped(self):
        x, v, box = lj_melt(seed=4)
        ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
        ref.run(30)
        assert box.contains(ref.x).all()

    def test_eam_path(self):
        x, box = fcc_lattice((3, 3, 3), 3.615)
        v = maxwell_velocities(x.shape[0], 0.02, seed=5)
        ref = SerialReference(x, v, box, SuttonChenEAM(cutoff=4.95), dt=0.002)
        e0 = ref.sample_thermo().total_energy
        ref.run(30)
        assert ref.sample_thermo().total_energy == pytest.approx(e0, rel=1e-5)
        assert ref.energy < 0  # cohesive metal

    def test_thermo_sample_fields(self):
        x, v, box = lj_melt(seed=6)
        ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
        s = ref.sample_thermo()
        assert s.natoms == x.shape[0]
        assert s.temperature > 0
        assert s.step == 0


class TestEmptyRanks:
    """Ranks that own zero atoms must not break any exchange."""

    def _sparse_sim(self, pattern):
        from repro import Simulation, SimulationConfig
        from repro.md import Box

        # 8 atoms clustered in one corner of a 8-rank decomposition.
        rng = np.random.default_rng(7)
        x = rng.uniform(0.5, 2.0, size=(8, 3))
        v = rng.normal(0, 0.1, size=(8, 3))
        box = Box((0, 0, 0), (12, 12, 12))
        cfg = SimulationConfig(dt=0.005, skin=0.3, pattern=pattern,
                               neighbor_every=5)
        return Simulation(x, v, box, LennardJones(cutoff=2.0), cfg, grid=(2, 2, 2))

    @pytest.mark.parametrize("pattern", ["3stage", "p2p", "parallel-p2p"])
    def test_empty_ranks_survive_steps(self, pattern):
        sim = self._sparse_sim(pattern)
        empties = sum(1 for r in range(8) if sim.atoms_of(r).nlocal == 0)
        assert empties >= 5  # most ranks start empty
        sim.run(10)
        assert sim.total_local_atoms() == 8
        sim.world.transport.assert_drained()
