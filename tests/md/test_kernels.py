"""Scatter-accumulation kernel tests (the bincount fast path)."""

import numpy as np
import pytest

from repro.md.kernels import scatter_add_scalar, scatter_add_vec, scatter_sub_vec


class TestScatterKernels:
    def test_matches_add_at_vec(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 50, 500)
        vec = rng.normal(size=(500, 3))
        a = np.zeros((50, 3))
        b = np.zeros((50, 3))
        scatter_add_vec(a, idx, vec)
        np.add.at(b, idx, vec)
        assert np.allclose(a, b, atol=1e-12)

    def test_matches_subtract_at(self):
        rng = np.random.default_rng(1)
        idx = rng.integers(0, 20, 100)
        vec = rng.normal(size=(100, 3))
        a = np.zeros((20, 3))
        b = np.zeros((20, 3))
        scatter_sub_vec(a, idx, vec)
        np.subtract.at(b, idx, vec)
        assert np.allclose(a, b, atol=1e-12)

    def test_scalar_accumulation(self):
        idx = np.array([0, 0, 2, 2, 2])
        vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        out = np.ones(4)
        scatter_add_scalar(out, idx, vals)
        assert np.allclose(out, [4.0, 1.0, 13.0, 1.0])

    def test_empty_index_noop(self):
        out = np.ones((3, 3))
        scatter_add_vec(out, np.empty(0, dtype=np.intp), np.empty((0, 3)))
        assert np.all(out == 1.0)
        s = np.ones(3)
        scatter_add_scalar(s, np.empty(0, dtype=np.intp), np.empty(0))
        assert np.all(s == 1.0)

    def test_accumulates_on_top_of_existing(self):
        out = np.full((2, 3), 10.0)
        scatter_add_vec(out, np.array([1]), np.array([[1.0, 2.0, 3.0]]))
        assert np.allclose(out[1], [11.0, 12.0, 13.0])
        assert np.allclose(out[0], 10.0)
