"""Lennard-Jones potential: analytic values, forces, Newton symmetry."""

import numpy as np
import pytest

from repro.md import Atoms, LennardJones
from repro.md.neighbor import build_pairs


def two_atoms(r):
    a = Atoms()
    a.set_local(
        np.array([[0.0, 0.0, 0.0], [r, 0.0, 0.0]]),
        np.zeros((2, 3)),
        np.array([0, 1]),
    )
    return a


class TestAnalyticValues:
    def test_minimum_at_r_min(self):
        lj = LennardJones()
        r_min = 2 ** (1 / 6)
        assert lj.pair_energy(np.array([r_min]))[0] == pytest.approx(-1.0)

    def test_zero_crossing_at_sigma(self):
        lj = LennardJones()
        assert lj.pair_energy(np.array([1.0]))[0] == pytest.approx(0.0)

    def test_force_zero_at_minimum(self):
        lj = LennardJones()
        r_min = 2 ** (1 / 6)
        assert lj.pair_force_over_r(np.array([r_min**2]))[0] == pytest.approx(
            0.0, abs=1e-12
        )

    def test_repulsive_inside_minimum(self):
        lj = LennardJones()
        assert lj.pair_force_over_r(np.array([1.0]))[0] > 0  # pushes apart

    def test_attractive_outside_minimum(self):
        lj = LennardJones()
        assert lj.pair_force_over_r(np.array([1.5**2]))[0] < 0

    def test_epsilon_sigma_scaling(self):
        lj = LennardJones(epsilon=2.0, sigma=3.0)
        base = LennardJones()
        assert lj.pair_energy(np.array([3.0 * 1.1]))[0] == pytest.approx(
            2.0 * base.pair_energy(np.array([1.1]))[0]
        )

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LennardJones(epsilon=-1.0)


class TestCompute:
    def test_force_matches_numerical_gradient(self):
        lj = LennardJones(cutoff=2.5)
        r = 1.3
        atoms = two_atoms(r)
        i, j = build_pairs(atoms.x, 2, 2.5)
        lj.compute(atoms, i, j)
        h = 1e-7
        e_plus = lj.pair_energy(np.array([r + h]))[0]
        e_minus = lj.pair_energy(np.array([r - h]))[0]
        f_numeric = -(e_plus - e_minus) / (2 * h)
        # force on atom 1 along +x equals -dU/dr
        assert atoms.f[1, 0] == pytest.approx(f_numeric, rel=1e-6)

    def test_newton_antisymmetry(self):
        lj = LennardJones()
        atoms = two_atoms(1.2)
        i, j = build_pairs(atoms.x, 2, 2.5)
        lj.compute(atoms, i, j)
        assert np.allclose(atoms.f[0], -atoms.f[1])

    def test_cutoff_respected(self):
        lj = LennardJones(cutoff=2.5)
        atoms = two_atoms(2.6)
        # pair within r_comm (cutoff+skin) but outside force cutoff
        i, j = build_pairs(atoms.x, 2, 3.0)
        res = lj.compute(atoms, i, j)
        assert res.energy == 0.0
        assert np.all(atoms.f == 0.0)

    def test_energy_counted_once_per_pair(self):
        lj = LennardJones()
        atoms = two_atoms(1.1)
        i, j = build_pairs(atoms.x, 2, 2.5)
        res = lj.compute(atoms, i, j)
        assert res.energy == pytest.approx(float(lj.pair_energy(np.array([1.1]))[0]))

    def test_full_list_halves_energy_per_visit(self):
        lj = LennardJones()
        atoms_h = two_atoms(1.1)
        ih, jh = build_pairs(atoms_h.x, 2, 2.5, half=True)
        e_half = lj.compute(atoms_h, ih, jh, half_list=True).energy

        atoms_f = two_atoms(1.1)
        i_f, j_f = build_pairs(atoms_f.x, 2, 2.5, half=False)
        e_full = lj.compute(atoms_f, i_f, j_f, half_list=False).energy
        assert e_full == pytest.approx(e_half)
        assert np.allclose(atoms_f.f[:2], atoms_h.f[:2])

    def test_virial_sign_convention(self):
        lj = LennardJones()
        # repulsive separation -> positive virial (outward pressure)
        atoms = two_atoms(1.0)
        i, j = build_pairs(atoms.x, 2, 2.5)
        assert lj.compute(atoms, i, j).virial > 0
        # attractive separation -> negative virial
        atoms = two_atoms(1.5)
        i, j = build_pairs(atoms.x, 2, 2.5)
        assert lj.compute(atoms, i, j).virial < 0

    def test_empty_pair_list(self):
        lj = LennardJones()
        atoms = two_atoms(1.0)
        res = lj.compute(atoms, np.empty(0, dtype=np.intp), np.empty(0, dtype=np.intp))
        assert res.energy == 0.0 and res.virial == 0.0

    def test_total_force_zero_many_atoms(self):
        rng = np.random.default_rng(0)
        n = 60
        # well-separated random gas to avoid overflow
        x = rng.uniform(0, 8, size=(n, 3))
        atoms = Atoms()
        atoms.set_local(x, np.zeros((n, 3)), np.arange(n, dtype=np.int64))
        lj = LennardJones(cutoff=2.0)
        i, j = build_pairs(atoms.x, n, 2.0)
        lj.compute(atoms, i, j)
        assert np.allclose(atoms.f.sum(axis=0), 0.0, atol=1e-9)
