"""Domain decomposition: grid choice, ownership, scatter."""

import numpy as np
import pytest

from repro.md import Box, Domain, decompose_grid


@pytest.fixture
def domain():
    return Domain(Box((0, 0, 0), (12, 12, 12)), (3, 2, 2))


class TestGridChoice:
    def test_cube_prefers_cubic_grid(self):
        assert decompose_grid(8, (10, 10, 10)) == (2, 2, 2)
        assert decompose_grid(27, (10, 10, 10)) == (3, 3, 3)

    def test_prime_rank_count(self):
        g = decompose_grid(7, (10, 10, 10))
        assert sorted(g) == [1, 1, 7]

    def test_elongated_box_splits_long_axis(self):
        g = decompose_grid(4, (40.0, 10.0, 10.0))
        assert g == (4, 1, 1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            decompose_grid(0, (1, 1, 1))


class TestSubBoxes:
    def test_sub_lengths(self, domain):
        assert np.allclose(domain.sub_lengths, [4, 6, 6])

    def test_sub_boxes_tile_box(self, domain):
        total = sum(
            domain.sub_box((i, j, k)).volume
            for i in range(3)
            for j in range(2)
            for k in range(2)
        )
        assert total == pytest.approx(domain.box.volume)

    def test_sub_box_metadata(self, domain):
        sb = domain.sub_box((2, 1, 0))
        assert sb.grid_pos == (2, 1, 0)
        assert sb.grid_shape == (3, 2, 2)
        assert sb.lo == (8.0, 6.0, 0.0)

    def test_out_of_grid_rejected(self, domain):
        with pytest.raises(ValueError):
            domain.sub_box((3, 0, 0))

    def test_size(self, domain):
        assert domain.size == 12


class TestOwnership:
    def test_owner_of_interior_points(self, domain):
        gp = domain.owner_grid_pos(np.array([[1.0, 1.0, 1.0], [9.0, 7.0, 7.0]]))
        assert gp.tolist() == [[0, 0, 0], [2, 1, 1]]

    def test_out_of_box_positions_wrap(self, domain):
        gp = domain.owner_grid_pos(np.array([[12.5, -0.5, 0.0]]))
        assert gp.tolist() == [[0, 1, 0]]

    def test_owner_consistent_with_sub_box(self, domain):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 12, size=(200, 3))
        gp = domain.owner_grid_pos(x)
        for pos, point in zip(gp, x):
            assert domain.sub_box(tuple(pos)).contains(point)

    def test_edge_positions_clipped(self, domain):
        # exactly on the global hi edge wraps to 0
        gp = domain.owner_grid_pos(np.array([[12.0, 12.0, 12.0]]))
        assert gp.tolist() == [[0, 0, 0]]


class TestScatter:
    def test_scatter_partitions_all_atoms(self, domain):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 12, size=(500, 3))
        groups = domain.scatter(x)
        idx = np.concatenate(list(groups.values()))
        assert sorted(idx.tolist()) == list(range(500))

    def test_scatter_groups_are_owned(self, domain):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 12, size=(300, 3))
        for pos, idx in domain.scatter(x).items():
            assert domain.sub_box(pos).contains(x[idx]).all()

    def test_scatter_empty(self, domain):
        assert domain.scatter(np.empty((0, 3))) == {}

    def test_single_rank_gets_everything(self):
        d = Domain(Box((0, 0, 0), (5, 5, 5)), (1, 1, 1))
        x = np.random.default_rng(3).uniform(0, 5, size=(50, 3))
        groups = d.scatter(x)
        assert list(groups) == [(0, 0, 0)]
        assert len(groups[(0, 0, 0)]) == 50
