"""Table 2 preset tests."""

import numpy as np
import pytest

from repro.md import LennardJones
from repro.md.potentials import SuttonChenEAM
from repro.md.presets import EAM_BENCH, LJ_BENCH, PRESETS


class TestTable2Values:
    def test_lj_column(self):
        assert LJ_BENCH.units == "lj"
        assert LJ_BENCH.lattice_value == pytest.approx(0.8442)
        assert LJ_BENCH.cutoff == 2.5
        assert LJ_BENCH.skin == 0.3
        assert LJ_BENCH.dt == 0.005
        assert LJ_BENCH.neigh_every == 20
        assert not LJ_BENCH.neigh_check
        assert LJ_BENCH.newton

    def test_eam_column(self):
        assert EAM_BENCH.units == "metal"
        assert EAM_BENCH.lattice_value == pytest.approx(3.615)
        assert EAM_BENCH.cutoff == 4.95
        assert EAM_BENCH.skin == 1.0
        assert EAM_BENCH.neigh_every == 5
        assert EAM_BENCH.neigh_check

    def test_potentials(self):
        assert isinstance(LJ_BENCH.potential(), LennardJones)
        assert isinstance(EAM_BENCH.potential(), SuttonChenEAM)

    def test_registry(self):
        assert set(PRESETS) == {"lj", "eam"}


class TestBuilders:
    def test_lj_density(self):
        x, v, box = LJ_BENCH.build_system((4, 4, 4))
        assert x.shape[0] / box.volume == pytest.approx(0.8442)

    def test_eam_lattice_constant(self):
        x, v, box = EAM_BENCH.build_system((3, 3, 3))
        assert box.lengths[0] == pytest.approx(3 * 3.615)

    def test_zero_temperature_zero_velocities(self):
        x, v, _ = LJ_BENCH.build_system((3, 3, 3), temperature=0.0)
        assert np.all(v == 0.0)

    def test_config_reflects_preset(self):
        cfg = EAM_BENCH.config(pattern="p2p", rdma=False)
        assert cfg.neighbor_check
        assert cfg.neighbor_every == 5
        assert cfg.pattern == "p2p"

    def test_config_overrides(self):
        cfg = LJ_BENCH.config(thermo_every=50)
        assert cfg.thermo_every == 50

    def test_simulation_end_to_end(self):
        sim = LJ_BENCH.simulation((4, 4, 4), grid=(2, 2, 1), pattern="p2p")
        sim.run(5)
        assert np.isfinite(sim.sample_thermo().total_energy)

    def test_eam_simulation_end_to_end(self):
        sim = EAM_BENCH.simulation((3, 3, 3), grid=(1, 1, 1))
        sim.run(3)
        assert sim.sample_thermo().total_energy < 0  # cohesive
