"""Multi-species support: per-pair LJ coefficients, mixing, and the type
array surviving ghosts and migration across every exchange pattern."""

import numpy as np
import pytest

from repro import LennardJones, SerialReference, Simulation, SimulationConfig
from repro.md import Box
from repro.md.atoms import Atoms
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.md.neighbor import build_pairs


class TestCoefficientTables:
    def test_defaults_fill_table(self):
        lj = LennardJones(epsilon=2.0, sigma=1.5, cutoff=3.0, n_types=3)
        assert lj.coeff(0, 2) == (2.0, 1.5, 3.0)

    def test_set_coeff_symmetric(self):
        lj = LennardJones(n_types=2)
        lj.set_coeff(0, 1, epsilon=0.5, sigma=1.2)
        assert lj.coeff(0, 1) == lj.coeff(1, 0)
        assert lj.coeff(0, 1)[0] == 0.5

    def test_lorentz_berthelot_mixing(self):
        lj = LennardJones(n_types=2)
        lj.set_coeff(0, 0, epsilon=1.0, sigma=1.0)
        lj.set_coeff(1, 1, epsilon=4.0, sigma=2.0)
        eps, sig, _ = lj.coeff(0, 1)
        assert eps == pytest.approx(2.0)  # sqrt(1*4)
        assert sig == pytest.approx(1.5)  # (1+2)/2

    def test_explicit_cross_term_beats_mixing(self):
        lj = LennardJones(n_types=2)
        lj.set_coeff(0, 1, epsilon=9.0, sigma=0.9)
        lj.set_coeff(0, 0, epsilon=1.0, sigma=1.0)
        lj.set_coeff(1, 1, epsilon=4.0, sigma=2.0)
        assert lj.coeff(0, 1)[0] == 9.0  # not remixed away

    def test_global_cutoff_tracks_max(self):
        lj = LennardJones(cutoff=2.5, n_types=2)
        lj.set_coeff(1, 1, epsilon=1.0, sigma=1.0, cutoff=4.0)
        assert lj.cutoff == 4.0

    def test_validation(self):
        lj = LennardJones(n_types=2)
        with pytest.raises(ValueError):
            lj.set_coeff(0, 5, 1.0, 1.0)
        with pytest.raises(ValueError):
            lj.set_coeff(0, 0, -1.0, 1.0)
        with pytest.raises(ValueError):
            LennardJones(n_types=0)


class TestKernel:
    def _dimer(self, r, types):
        atoms = Atoms()
        atoms.set_local(
            np.array([[0.0, 0, 0], [r, 0, 0]]),
            np.zeros((2, 3)),
            np.array([0, 1]),
            np.array(types, dtype=np.int32),
        )
        return atoms

    def test_per_pair_energy(self):
        lj = LennardJones(n_types=2)
        lj.set_coeff(0, 0, 1.0, 1.0)
        lj.set_coeff(1, 1, 3.0, 1.0)
        r = 1.1

        def energy(types):
            atoms = self._dimer(r, types)
            i, j = build_pairs(atoms.x, 2, lj.cutoff)
            return lj.compute(atoms, i, j).energy

        e00 = energy([0, 0])
        e11 = energy([1, 1])
        assert e11 == pytest.approx(3.0 * e00)
        e01 = energy([0, 1])
        assert e01 == pytest.approx(np.sqrt(3.0) * e00)  # mixed epsilon

    def test_single_type_path_unchanged(self):
        """n_types=1 must give bit-identical results to the fast path."""
        lj1 = LennardJones()
        lj2 = LennardJones(n_types=2)  # same coeffs everywhere
        atoms_a = self._dimer(1.3, [0, 0])
        atoms_b = self._dimer(1.3, [0, 1])
        i, j = build_pairs(atoms_a.x, 2, 2.5)
        e1 = lj1.compute(atoms_a, i, j).energy
        e2 = lj2.compute(atoms_b, i, j).energy
        assert e1 == pytest.approx(e2)

    def test_per_pair_cutoff(self):
        lj = LennardJones(n_types=2)
        lj.set_coeff(0, 0, 1.0, 1.0, cutoff=1.0)
        lj.set_coeff(1, 1, 1.0, 1.0, cutoff=3.0)
        atoms = self._dimer(2.0, [0, 0])
        i, j = build_pairs(atoms.x, 2, 3.0)
        assert lj.compute(atoms, i, j).energy == 0.0  # beyond 0-0 cutoff
        atoms = self._dimer(2.0, [1, 1])
        assert lj.compute(atoms, i, j).energy != 0.0


class TestParallelMixture:
    @pytest.fixture(scope="class")
    def mixture(self):
        """A 50/50 binary LJ mixture on an FCC lattice."""
        edge = lj_density_to_cell(0.8442)
        x, box = fcc_lattice((4, 4, 4), edge)
        rng = np.random.default_rng(31)
        types = (rng.random(x.shape[0]) < 0.5).astype(np.int32)
        v = maxwell_velocities(x.shape[0], 1.0, seed=31)
        lj = LennardJones(n_types=2, cutoff=2.5)
        lj.set_coeff(0, 0, 1.0, 1.0)
        lj.set_coeff(1, 1, 0.5, 0.88)
        return x, v, box, types, lj

    def _build_potential(self):
        lj = LennardJones(n_types=2, cutoff=2.5)
        lj.set_coeff(0, 0, 1.0, 1.0)
        lj.set_coeff(1, 1, 0.5, 0.88)
        return lj

    @pytest.mark.parametrize("pattern,rdma", [
        ("3stage", False), ("p2p", False), ("p2p", True), ("parallel-p2p", True),
    ])
    def test_mixture_matches_serial(self, mixture, pattern, rdma):
        x, v, box, types, _ = mixture
        ref = SerialReference(
            x, v, box, self._build_potential(), dt=0.005, types=types
        )
        ref.run(15)
        cfg = SimulationConfig(dt=0.005, skin=0.3, pattern=pattern, rdma=rdma,
                               neighbor_every=5)
        sim = Simulation(
            x, v, box, self._build_potential(), cfg, grid=(2, 2, 2), types=types
        )
        sim.run(15)
        d = box.minimum_image(sim.gather_positions() - ref.x)
        assert np.abs(d).max() < 1e-9

    def test_types_travel_with_migration(self, mixture):
        x, v, box, types, _ = mixture
        cfg = SimulationConfig(dt=0.005, skin=0.3, pattern="p2p", neighbor_every=5)
        sim = Simulation(
            x, v, box, self._build_potential(), cfg, grid=(2, 2, 2), types=types
        )
        sim.run(20)
        # Reassemble types by tag; must match the initial assignment.
        out = np.full(sim.natoms, -1, dtype=np.int32)
        for rank in range(8):
            atoms = sim.atoms_of(rank)
            out[atoms.tag[: atoms.nlocal]] = atoms.type[: atoms.nlocal]
        assert np.array_equal(out, types)

    def test_ghost_types_consistent(self, mixture):
        x, v, box, types, _ = mixture
        cfg = SimulationConfig(dt=0.005, skin=0.3, pattern="p2p")
        sim = Simulation(
            x, v, box, self._build_potential(), cfg, grid=(2, 2, 2), types=types
        )
        sim.setup()
        for rank in range(8):
            atoms = sim.atoms_of(rank)
            ghost_tags = atoms.tag[atoms.nlocal :]
            ghost_types = atoms.type[atoms.nlocal :]
            assert np.array_equal(ghost_types, types[ghost_tags])

    def test_bad_types_shape_rejected(self, mixture):
        x, v, box, types, _ = mixture
        with pytest.raises(ValueError):
            Simulation(
                x, v, box, self._build_potential(), SimulationConfig(),
                grid=(1, 1, 1), types=types[:-1],
            )
