"""LAMMPS input-script reader tests."""

from pathlib import Path

import numpy as np
import pytest

from repro.md import LennardJones
from repro.md.inputscript import InputScript, InputScriptError
from repro.md.potentials import SuttonChenEAM

LJ_SCRIPT = """
units           lj
atom_style      atomic
lattice         fcc 0.8442
region          box block 0 4 0 4 0 4
create_box      1 box
create_atoms    1 box
mass            1 1.0
velocity        all create 1.44 87287 loop geom
pair_style      lj/cut 2.5
pair_coeff      1 1 1.0 1.0 2.5
neighbor        0.3 bin
neigh_modify    delay 0 every 20 check no
fix             1 all nve
timestep        0.005
thermo          10
run             20
"""

EAM_SCRIPT = """
units           metal
lattice         fcc 3.615
region          box block 0 3 0 3 0 3
create_box      1 box
create_atoms    1 box
mass            1 63.55
velocity        all create 0.05 482748
pair_style      eam
pair_coeff      * * Cu_u3.eam
neighbor        1.0 bin
neigh_modify    every 5 check yes
fix             1 all nve
timestep        0.002
run             10
"""


class TestParsing:
    def test_lj_script_state(self):
        s = InputScript(LJ_SCRIPT).state
        assert s.units == "lj"
        assert s.lattice_value == pytest.approx(0.8442)
        assert s.pair_style == "lj/cut"
        assert s.skin == pytest.approx(0.3)
        assert s.neigh_every == 20
        assert not s.neigh_check
        assert s.timestep == pytest.approx(0.005)
        assert s.run_steps == [20]

    def test_eam_script_state(self):
        s = InputScript(EAM_SCRIPT).state
        assert s.units == "metal"
        assert s.pair_style == "eam"
        assert s.neigh_check
        assert s.neigh_every == 5

    def test_comments_and_blanks_ignored(self):
        script = InputScript("# comment\n\nunits lj  # trailing\n")
        assert script.state.units == "lj"
        assert len(script.commands) == 1

    def test_unknown_command_rejected(self):
        with pytest.raises(InputScriptError, match="unsupported command"):
            InputScript("frobnicate all the things\n")

    def test_malformed_command_rejected(self):
        with pytest.raises(InputScriptError, match="malformed"):
            InputScript("lattice fcc notanumber\n")

    def test_unsupported_styles_rejected(self):
        with pytest.raises(InputScriptError):
            InputScript("pair_style tersoff\n")
        with pytest.raises(InputScriptError):
            InputScript("units real\n")
        with pytest.raises(InputScriptError):
            InputScript("lattice bcc 2.0\n")

    def test_comm_extension_commands(self):
        s = InputScript("comm_pattern p2p\ncomm_rdma off\n").state
        assert s.comm_pattern == "p2p"
        assert not s.comm_rdma

    def test_bad_comm_pattern(self):
        with pytest.raises(InputScriptError):
            InputScript("comm_pattern smoke-signals\n")


class TestBuildSystem:
    def test_lj_atom_count_and_density(self):
        script = InputScript(LJ_SCRIPT)
        x, box = script.build_system()
        assert x.shape[0] == 4 * 4**3  # 4 atoms per cell
        assert x.shape[0] / box.volume == pytest.approx(0.8442)

    def test_metal_lattice_constant(self):
        script = InputScript(EAM_SCRIPT)
        x, box = script.build_system()
        assert box.lengths[0] == pytest.approx(3 * 3.615)

    def test_potentials(self):
        assert isinstance(InputScript(LJ_SCRIPT).build_potential(), LennardJones)
        assert isinstance(InputScript(EAM_SCRIPT).build_potential(), SuttonChenEAM)

    def test_ordering_enforced(self):
        with pytest.raises(InputScriptError, match="before region"):
            InputScript("create_box 1 box\n")
        with pytest.raises(InputScriptError, match="before create_box"):
            InputScript("lattice fcc 1.0\nregion box block 0 2 0 2 0 2\ncreate_atoms 1 box\n")

    def test_missing_integrator(self):
        incomplete = LJ_SCRIPT.replace("fix             1 all nve\n", "")
        with pytest.raises(InputScriptError, match="no integrator"):
            InputScript(incomplete).build(grid=(1, 1, 1))


class TestBuildAndRun:
    def test_lj_end_to_end(self):
        script = InputScript(LJ_SCRIPT)
        sim = script.build(grid=(2, 2, 2))
        sim.run(script.total_run_steps())
        s = sim.sample_thermo()
        assert np.isfinite(s.total_energy)
        assert sim.step_count == 20
        assert sim.config.neighbor_every == 20

    def test_script_matches_programmatic_setup(self):
        """The script path and quick_lj_simulation build the same system."""
        from repro import quick_lj_simulation

        script = InputScript(LJ_SCRIPT)
        sim_a = script.build(grid=(2, 2, 2))
        sim_b = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), seed=87287,
            pattern="parallel-p2p", rdma=True,
        )
        assert sim_a.natoms == sim_b.natoms
        assert np.allclose(sim_a.box.lengths, sim_b.box.lengths)

    def test_shipped_bench_inputs_parse(self):
        root = Path(__file__).resolve().parents[2] / "examples" / "inputs"
        for name in ("in.lj", "in.eam"):
            script = InputScript.from_file(root / name)
            assert script.total_run_steps() > 0
            sim = script.build(grid=(2, 2, 1))
            sim.run(2)  # a couple of steps proves the whole pipeline

    def test_cli_accepts_input_file(self, capsys):
        from repro.cli import main

        root = Path(__file__).resolve().parents[2] / "examples" / "inputs"
        small = InputScript.from_file(root / "in.lj")
        # run via CLI with an explicit small grid
        rc = main(["--input", str(root / "in.lj"), "--ranks", "2", "2", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "input script" in out
        assert "Performance:" in out
