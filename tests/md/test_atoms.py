"""SoA atom-array tests: local/ghost layout, growth accounting."""

import numpy as np
import pytest

from repro.md import Atoms


@pytest.fixture
def atoms():
    a = Atoms(capacity=8)
    x = np.arange(9.0).reshape(3, 3)
    v = np.ones((3, 3))
    a.set_local(x, v, np.array([10, 11, 12]))
    return a


class TestLocal:
    def test_set_local(self, atoms):
        assert atoms.nlocal == 3
        assert atoms.nghost == 0
        assert np.array_equal(atoms.tag, [10, 11, 12])

    def test_views_share_storage(self, atoms):
        atoms.x[0, 0] = 99.0
        assert atoms.x_local()[0, 0] == 99.0

    def test_mismatched_shapes_rejected(self):
        a = Atoms()
        with pytest.raises(ValueError):
            a.set_local(np.zeros((3, 3)), np.zeros((2, 3)), np.zeros(3, dtype=np.int64))


class TestGhosts:
    def test_append_ghosts_returns_range(self, atoms):
        start, count = atoms.append_ghosts(np.zeros((2, 3)), np.array([20, 21]))
        assert (start, count) == (3, 2)
        assert atoms.ntotal == 5
        assert atoms.nghost == 2

    def test_ghosts_follow_locals_in_memory(self, atoms):
        atoms.append_ghosts(7 * np.ones((2, 3)), np.array([20, 21]))
        assert np.all(atoms.x[3:] == 7.0)
        assert np.array_equal(atoms.tag[3:], [20, 21])

    def test_clear_ghosts(self, atoms):
        atoms.append_ghosts(np.zeros((2, 3)), np.array([20, 21]))
        atoms.clear_ghosts()
        assert atoms.nghost == 0
        assert atoms.ntotal == 3

    def test_ghost_forces_zeroed_on_append(self, atoms):
        atoms._f[3:5] = 42.0
        atoms.append_ghosts(np.zeros((2, 3)), np.array([20, 21]))
        assert np.all(atoms.f[3:5] == 0.0)


class TestGrowth:
    def test_growth_preserves_data(self):
        a = Atoms(capacity=2)
        a.set_local(np.ones((2, 3)), np.zeros((2, 3)), np.array([1, 2]))
        a.append_ghosts(2 * np.ones((10, 3)), np.arange(10, dtype=np.int64))
        assert np.all(a.x[:2] == 1.0)
        assert np.all(a.x[2:] == 2.0)
        assert a.grow_events >= 1

    def test_presized_arrays_never_grow(self):
        """The paper's section 3.4 invariant: theoretical-max sizing means
        zero reallocation during the run."""
        a = Atoms(capacity=100)
        a.set_local(np.zeros((10, 3)), np.zeros((10, 3)), np.arange(10, dtype=np.int64))
        for _ in range(5):
            a.clear_ghosts()
            a.append_ghosts(np.zeros((80, 3)), np.arange(80, dtype=np.int64))
        assert a.grow_events == 0

    def test_reserve_noop_when_sufficient(self, atoms):
        cap = atoms.capacity
        atoms.reserve(cap - 1)
        assert atoms.capacity == cap
        assert atoms.grow_events == 0


class TestMigration:
    def test_remove_local_returns_removed(self, atoms):
        x, v, tag, type_ = atoms.remove_local(np.array([1]))
        assert np.array_equal(tag, [11])
        assert type_.shape == (1,)
        assert atoms.nlocal == 2
        assert np.array_equal(atoms.tag, [10, 12])

    def test_remove_preserves_order_of_kept(self, atoms):
        atoms.remove_local(np.array([0]))
        assert np.array_equal(atoms.tag, [11, 12])

    def test_add_local(self, atoms):
        atoms.add_local(np.zeros((1, 3)), np.zeros((1, 3)), np.array([99]))
        assert atoms.nlocal == 4
        assert atoms.tag[3] == 99

    def test_migration_blocked_with_ghosts(self, atoms):
        atoms.append_ghosts(np.zeros((1, 3)), np.array([20]))
        with pytest.raises(RuntimeError):
            atoms.add_local(np.zeros((1, 3)), np.zeros((1, 3)), np.array([99]))
        with pytest.raises(RuntimeError):
            atoms.remove_local(np.array([0]))

    def test_remove_out_of_range(self, atoms):
        with pytest.raises(IndexError):
            atoms.remove_local(np.array([5]))

    def test_remove_empty_is_noop(self, atoms):
        atoms.remove_local(np.empty(0, dtype=np.intp))
        assert atoms.nlocal == 3


class TestForces:
    def test_zero_forces(self, atoms):
        atoms.f[:] = 3.0
        atoms.zero_forces()
        assert np.all(atoms.f == 0.0)
