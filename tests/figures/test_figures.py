"""Figure-module tests: structure, paper claims, rendering."""

import pytest

from repro.figures import (
    ablations,
    eqs,
    fig6,
    fig8,
    fig12,
    fig13,
    fig14,
    fig15,
    micro33,
    table1,
)


class TestTable1:
    def test_compute_and_claims(self):
        res = table1.compute()
        assert res.volume_ratio == pytest.approx(0.5)
        assert res.three_stage.total_messages == 6
        assert res.p2p.total_messages == 13

    def test_render_mentions_paper(self):
        text = table1.render(table1.compute())
        assert "Table 1" in text
        assert "0.5" in text


class TestEqs:
    def test_claims(self):
        res = eqs.compute()
        assert res.utofu_p2p_wins
        assert res.mpi_naive_p2p_loses

    def test_render(self):
        text = eqs.render(eqs.compute())
        assert "Eq3" in text and "Eq8" in text


class TestFig6:
    def test_orderings(self):
        res = fig6.compute()
        t = res.times["lj-65k"]
        assert t["mpi_p2p"] > t["ref"]
        assert t["opt"] < t["ref"]
        assert 0.6 < res.reduction("lj-65k") < 0.95

    def test_render(self):
        assert "Fig. 6" in fig6.render(fig6.compute())


class TestFig8:
    def test_claims(self):
        res = fig8.compute(per_rank=50)
        assert res.parallel_gain(256) > 1.5
        k = res.sizes.index(256)
        assert res.rates["single-6tni"][k] < res.rates["single-4tni"][k]

    def test_rates_decrease_with_size(self):
        res = fig8.compute(per_rank=50)
        for mode in res.rates:
            r = res.rates[mode]
            assert r[0] >= r[-1]


class TestFig12:
    @pytest.fixture(scope="class")
    def res(self):
        return fig12.compute()

    def test_speedup_bands(self, res):
        assert 2.2 <= res.speedup("lj-65k", "opt") <= 4.2
        assert res.speedup("eam-65k", "opt") > res.speedup("eam-1.7m", "opt")

    def test_reductions(self, res):
        assert 0.6 <= res.comm_reduction("lj-65k") <= 0.9
        assert res.pair_reduction("lj-65k") > 0.3

    def test_render(self, res):
        text = fig12.render(res)
        assert "Fig. 12" in text and "paper 3.01x" in text


class TestFig13:
    @pytest.fixture(scope="class")
    def res(self):
        return fig13.compute()

    def test_headline(self, res):
        assert 2.2 <= res.speedup_last("lj") <= 3.8
        assert 1.7 <= res.speedup_last("eam") <= 3.2

    def test_efficiency_monotone(self, res):
        for key in res.curves:
            eff = fig13.parallel_efficiency(res.curves[key])
            assert all(a >= b for a, b in zip(eff, eff[1:]))

    def test_render_contains_table3(self, res):
        text = fig13.render(res)
        assert "Table 3" in text
        assert "Origin-LJ" in text and "Opt-EAM" in text


class TestFig14:
    def test_linearity(self):
        res = fig14.compute()
        assert res.linearity("lj") > 0.9
        assert res.curves["lj"][-1].natoms > 9e10


class TestFig15:
    def test_winners(self):
        wins = fig15.compute().wins()
        assert wins == {26: True, 62: True, 124: False}

    def test_times_positive_and_ordered(self):
        res = fig15.compute()
        for s in res.scenarios:
            assert s.p2p_time > 0 and s.three_stage_time > 0
        # p2p time grows with neighbor count
        p2p = [s.p2p_time for s in res.scenarios]
        assert p2p[0] < p2p[1] < p2p[2]


class TestMicro33:
    def test_constants(self):
        res = micro33.compute()
        assert res.openmp_fork_join == pytest.approx(5.8e-6)
        assert res.pool_fork_join == pytest.approx(1.1e-6)
        assert res.openmp_modify_slowdown > 8


class TestAblations:
    def test_compute(self):
        res = ablations.compute(n_atoms=2000)
        assert res.registrations_opt < res.registrations_baseline
        assert 0 < res.combine_saving < 1
        assert res.bins_test_reduction > 4

    def test_perf_ablation_each_removal_costs(self):
        results = ablations.perf_ablation()
        for wname, times in results.items():
            base = times["opt"]
            for name, t in times.items():
                assert t >= base * 0.999, f"{name} should not beat opt"
            assert times["opt-openmp"] > base * 1.1  # threading is the big one


class TestMainModule:
    def test_run_selected(self):
        from repro.figures.__main__ import run

        text = run(["table1", "eqs"])
        assert "table1" in text and "eqs" in text

    def test_unknown_experiment(self):
        from repro.figures.__main__ import main

        assert main(["bogus"]) == 2


class TestTopoMap:
    def test_hop_reduction(self):
        from repro.figures import topomap

        res = topomap.compute(job_nodes=(4, 6, 4))
        assert res.hop_reduction > 0.3
        assert res.mapped.mean_hops < res.randomized.mean_hops
        assert "topo map" in topomap.render(res)
