"""commlint: seeded-bug fixtures, suppressions, and the clean-tree gate."""

from repro.analysis.commlint import (
    DEFAULT_MODULES,
    MIN_RING_DEPTH,
    RULES,
    default_paths,
    lint_source,
    run_commlint,
    run_introspection,
)
from repro.analysis.findings import SCHEMA, AnalysisReport, Finding


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestSeededBugs:
    """Each §3 invariant violation is flagged by its stable rule ID."""

    def test_ring_depth_three_flags_cl001(self):
        src = "ring = RecvBufferRing(engine, 0, cap, depth=3)\n"
        assert rules_of(lint_source(src)) == ["CL001"]

    def test_ring_depth_positional_literal(self):
        src = "ring = RecvBufferRing(engine, 0, cap, 2)\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["CL001"]
        assert f"2 < {MIN_RING_DEPTH}" in findings[0].message

    def test_default_ring_depth_below_four(self):
        src = "def make(engine, ring_depth=3):\n    return ring_depth\n"
        assert rules_of(lint_source(src)) == ["CL001"]

    def test_endpoint_ring_depth_keyword(self):
        src = "ep = RdmaEndpoint(rank=0, engine=e, ring_depth=1)\n"
        assert rules_of(lint_source(src)) == ["CL001"]

    def test_ring_depth_four_is_clean(self):
        src = "ring = RecvBufferRing(engine, 0, cap, depth=4)\n"
        assert lint_source(src) == []

    def test_duplicated_vcq_binding_flags_cl002(self):
        src = "a = ControlQueue(1, 2)\nb = ControlQueue(1, 2)\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["CL002"]
        assert findings[0].line == 2
        assert "first at line 1" in findings[0].message

    def test_distinct_bindings_are_clean(self):
        src = "a = ControlQueue(1, 2)\nb = ControlQueue(1, 3)\n"
        assert lint_source(src) == []

    def test_reverse_before_forward_flags_cl004(self):
        src = (
            "def round(self):\n"
            "    self.reverse(f)\n"
            "    self.forward(x)\n"
        )
        assert rules_of(lint_source(src)) == ["CL004"]

    def test_forward_before_borders_flags_cl004(self):
        src = (
            "def round(self):\n"
            "    self.forward(x)\n"
            "    self.borders(x)\n"
        )
        assert rules_of(lint_source(src)) == ["CL004"]

    def test_correct_stage_order_is_clean(self):
        src = (
            "def round(self):\n"
            "    self.borders(x)\n"
            "    self.forward(x)\n"
            "    self.reverse(f)\n"
        )
        assert lint_source(src) == []

    def test_asymmetric_newton_plan_flags_cl005(self):
        src = (
            "SEND_OFFSETS = [(1, 0, 0), (0, 1, 0)]\n"
            "RECV_OFFSETS = [(-1, 0, 0), (0, 1, 0)]\n"
        )
        assert rules_of(lint_source(src)) == ["CL005"]

    def test_half_shell_negation_plan_is_clean(self):
        src = (
            "SEND_OFFSETS = [(1, 0, 0), (0, 1, 0)]\n"
            "RECV_OFFSETS = [(-1, 0, 0), (0, -1, 0)]\n"
        )
        assert lint_source(src) == []

    def test_negation_closed_full_shell_is_clean(self):
        src = (
            "SEND_OFFSETS = [(1, 0, 0), (-1, 0, 0)]\n"
            "RECV_OFFSETS = [(1, 0, 0), (-1, 0, 0)]\n"
        )
        assert lint_source(src) == []

    def test_literal_stag_put_flags_cl006(self):
        src = "engine.put(src, 0, 9, dst_stag=1234, dst_offset=off, count=n)\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["CL006"]
        assert "literal stag 1234" in findings[0].message

    def test_literal_remote_offset_flags_cl006(self):
        src = "engine.put(src, 0, 9, dst_stag=s, dst_offset=640, count=n)\n"
        assert rules_of(lint_source(src)) == ["CL006"]

    def test_put_positions_without_window_exchange_flags_cl006(self):
        src = (
            "def forward(self):\n"
            "    self.endpoint.put_positions(peer, block)\n"
        )
        assert rules_of(lint_source(src)) == ["CL006"]

    def test_put_positions_with_window_exchange_is_clean(self):
        src = (
            "def _exchange_windows(self):\n"
            "    pass\n"
            "def forward(self):\n"
            "    self.endpoint.put_positions(peer, block)\n"
        )
        assert lint_source(src) == []

    def test_undersized_literal_ring_capacity_flags_cl007(self):
        src = "ring = RecvBufferRing(engine, 0, 64, depth=4)\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["CL007"]
        assert "bare literal 64" in findings[0].message

    def test_budget_derived_capacity_is_clean(self):
        src = (
            "cap = budget.max_atoms_per_message() * 3 + 1\n"
            "ring = RecvBufferRing(engine, 0, cap, depth=4)\n"
        )
        assert lint_source(src) == []

    def test_budgetless_buffer_pool_class_flags_cl008(self):
        src = (
            "class BufferPool:\n"
            "    def vec(self, rows):\n"
            "        return np.empty((rows * 2, 3))\n"
        )
        findings = lint_source(src)
        assert rules_of(findings) == ["CL008"]
        assert "GhostBudget" in findings[0].message

    def test_budget_sized_buffer_pool_class_is_clean(self):
        src = (
            "class BufferPool:\n"
            "    def _capacity_for(self, rows):\n"
            "        return int(self.budget.max_ghost_atoms(self.full_shell))\n"
        )
        assert lint_source(src) == []

    def test_literal_pool_budget_flags_cl008(self):
        src = "pool = BufferPool(4096)\n"
        findings = lint_source(src)
        assert rules_of(findings) == ["CL008"]

    def test_pool_with_budget_object_is_clean(self):
        src = "pool = BufferPool(self._plan_budget(), full_shell=False)\n"
        assert lint_source(src) == []


class TestSuppressions:
    def test_same_line_disable_hides_the_finding(self):
        src = (
            "ring = RecvBufferRing(engine, 0, cap, depth=3)"
            "  # commlint: disable=CL001\n"
        )
        assert lint_source(src) == []
        assert lint_source.last_suppressed == 1

    def test_file_level_disable_hides_everywhere(self):
        src = (
            "# commlint: disable-file=CL001\n"
            "a = RecvBufferRing(engine, 0, cap, depth=3)\n"
            "b = RecvBufferRing(engine, 0, cap, depth=2)\n"
        )
        assert lint_source(src) == []
        assert lint_source.last_suppressed == 2

    def test_disable_of_other_rule_does_not_hide(self):
        src = (
            "ring = RecvBufferRing(engine, 0, cap, depth=3)"
            "  # commlint: disable=CL002\n"
        )
        assert rules_of(lint_source(src)) == ["CL001"]

    def test_suppressed_count_reported_by_run_commlint(self, tmp_path):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(
            "ring = RecvBufferRing(engine, 0, cap, depth=3)"
            "  # commlint: disable=CL001\n"
        )
        report = run_commlint(paths=[str(fixture)], introspect=False)
        assert report.clean
        assert report.suppressed == 1


class TestCleanTree:
    """The shipping communication stack must produce zero findings."""

    def test_default_paths_cover_the_stack(self):
        paths = default_paths()
        assert len(paths) == len(DEFAULT_MODULES)
        assert all(p.endswith(".py") for p in paths)

    def test_full_run_is_clean(self):
        report = run_commlint()
        assert report.clean, report.render()
        assert len(report.files_analyzed) == len(DEFAULT_MODULES)

    def test_introspection_is_clean(self):
        assert run_introspection() == []

    def test_introspection_catches_broken_binding(self, monkeypatch):
        """CL003 fires when the live fine binding stops yielding 24 CQs."""
        from repro.machine import tni as tni_mod

        original = tni_mod.NodeNIC.bind_fine

        def skewed(self, ranks):
            vcq_map = original(self, ranks)
            first = next(iter(vcq_map))
            vcq_map[first] = vcq_map[first][:-1]  # drop one rank's VCQ
            return vcq_map

        monkeypatch.setattr(tni_mod.NodeNIC, "bind_fine", skewed)
        findings = run_introspection()
        assert "CL003" in {f.rule for f in findings}


class TestReportSchema:
    def test_every_rule_has_a_catalog_entry(self):
        assert sorted(RULES) == [f"CL{n:03d}" for n in range(1, 10)]

    def test_json_document_shape(self):
        report = AnalysisReport(tool="commlint")
        report.add(Finding(rule="CL001", message="m", path="p.py", line=3))
        doc = report.to_dict()
        assert doc["schema"] == SCHEMA
        assert doc["tool"] == "commlint"
        assert doc["findings"][0]["rule"] == "CL001"
        assert not report.ok and not report.clean

    def test_warning_findings_pass_ok_but_not_clean(self):
        report = AnalysisReport(tool="commlint")
        report.add(Finding(rule="CL001", message="m", severity="warning"))
        assert report.ok and not report.clean

    def test_by_rule_groups(self):
        report = AnalysisReport(tool="commlint")
        report.add(Finding(rule="CL001", message="a"))
        report.add(Finding(rule="CL001", message="b"))
        report.add(Finding(rule="CL005", message="c"))
        assert report.by_rule() == {"CL001": 2, "CL005": 1}


class TestInflightCapacity:
    """CL009: ring capacity must absorb the worst-case same-route burst."""

    @staticmethod
    def _profile(**overrides):
        from repro.analysis.commlint import CommProfile

        base = dict(
            label="cl009", sub_box_edge=3.36, rcomm=2.8, density=0.8442
        )
        base.update(overrides)
        return CommProfile(**base)

    def test_default_unfenced_profile_is_clean(self):
        from repro.analysis.commlint import lint_config

        assert rules_of(lint_config(self._profile())) == []

    def test_fenced_rdma_profile_is_clean(self):
        from repro.analysis.commlint import lint_config

        profile = self._profile(rdma=True, inflight_epochs=1)
        assert "CL009" not in rules_of(lint_config(profile))

    def test_overcommitted_schedule_flags_cl009(self):
        """A schedule leaving many epochs un-drained overflows 4 slots."""
        from repro.analysis.commlint import lint_config

        profile = self._profile(inflight_epochs=30)
        assert "CL009" in rules_of(lint_config(profile))

    def test_nonpositive_epochs_flag_cl009(self):
        from repro.analysis.commlint import lint_config

        profile = self._profile(inflight_epochs=0)
        assert "CL009" in rules_of(lint_config(profile))

    def test_static_literal_depth_below_epochs(self):
        src = "ring = RecvBufferRing(engine, 0, cap, depth=4, inflight_epochs=6)\n"
        assert rules_of(lint_source(src)) == ["CL009"]

    def test_static_depth_covering_epochs_is_clean(self):
        src = "ring = RecvBufferRing(engine, 0, cap, depth=6, inflight_epochs=3)\n"
        assert lint_source(src) == []

    def test_same_line_disable_hides_cl009(self):
        src = (
            "ring = RecvBufferRing(engine, 0, cap, depth=4, "
            "inflight_epochs=6)  # commlint: disable=CL009\n"
        )
        assert lint_source(src) == []
