"""``repro analyze`` exit codes/output and the selfcheck failure contract."""

import json

import repro.cli as repro_cli
from repro.analysis.cli import main as analyze_main
from repro.analysis.findings import SCHEMA


SEEDED = "ring = RecvBufferRing(engine, 0, cap, depth=3)\n"


class TestAnalyzeCli:
    def test_clean_static_run_exits_zero(self, capsys):
        assert analyze_main(["--no-dynamic"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_seeded_bug_exits_one_and_names_the_rule(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(SEEDED)
        code = analyze_main(
            ["--paths", str(fixture), "--no-introspect", "--no-dynamic"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "CL001" in out and "seeded.py:1" in out

    def test_json_report_matches_schema(self, capsys):
        assert analyze_main(["--no-dynamic", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == SCHEMA
        assert doc["tool"] == "analyze"
        assert doc["findings"] == []
        from repro.analysis.commlint import DEFAULT_MODULES

        assert doc["summary"]["files_analyzed"] == len(DEFAULT_MODULES)

    def test_strict_fails_on_warning_findings(self, tmp_path, capsys, monkeypatch):
        """--strict gates on *any* finding, not only errors."""
        from repro.analysis import cli as analysis_cli
        from repro.analysis.findings import AnalysisReport, Finding

        def warn_only(paths=None, introspect=True):
            report = AnalysisReport(tool="commlint")
            report.add(Finding(rule="CL001", message="w", severity="warning"))
            return report

        monkeypatch.setattr(
            "repro.analysis.commlint.run_commlint", warn_only
        )
        assert analysis_cli.main(["--no-dynamic"]) == 0
        assert analysis_cli.main(["--no-dynamic", "--strict"]) == 1

    def test_missing_fault_plan_exits_two(self, capsys):
        assert analyze_main(["--faults", "/nonexistent/plan.json"]) == 2
        assert "cannot load fault plan" in capsys.readouterr().out

    def test_trace_file_mode_flags_saved_hazards(self, tmp_path, capsys):
        from repro.faults import FAULTS, FaultPlan, FaultSpec
        from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
        from repro.md.potentials import LennardJones
        from repro.md.simulation import Simulation, SimulationConfig
        from repro.obs import hbevents, observe
        from repro.obs.export import write_chrome_trace

        hbevents.reset()
        path = str(tmp_path / "stale.json")
        edge = lj_density_to_cell(0.8442)
        x, box = fcc_lattice((4, 4, 4), edge)
        v = maxwell_velocities(x.shape[0], 1.44, seed=7)
        cfg = SimulationConfig(
            dt=0.005, skin=0.3, pattern="p2p", rdma=True, neighbor_every=3
        )
        plan = FaultPlan(
            seed=3, faults=(FaultSpec(kind="rdma-stale", count=1, severity=2),)
        )
        with observe(metrics=False) as (tracer, _):
            sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
            with FAULTS.inject(plan):
                sim.run(6)
            write_chrome_trace(path, tracer)
        assert analyze_main(["--trace", path]) == 1
        out = capsys.readouterr().out
        assert "HB001" in out

    def test_dispatch_through_repro_cli(self, capsys):
        """``python -m repro analyze ...`` routes to the analysis CLI."""
        assert repro_cli.main(["analyze", "--no-dynamic"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


class TestSelfcheckExitContract:
    """--selfcheck must exit nonzero and print the failing check names."""

    @staticmethod
    def fake_report(*checks):
        from repro.selfcheck import SelfCheckReport

        report = SelfCheckReport()
        for name, passed in checks:
            report.add(name, passed)
        return report

    def test_failure_exits_one_and_names_checks(self, monkeypatch, capsys):
        report = self.fake_report(
            ("energy conservation", True),
            ("commlint clean on the communication stack", False),
            ("race detector silent on fault-free RDMA run", False),
        )
        monkeypatch.setattr(
            "repro.selfcheck.run_selfcheck", lambda fault_plan=None: report
        )
        assert repro_cli.main(["--selfcheck"]) == 1
        out = capsys.readouterr().out
        assert (
            "# selfcheck FAILED: commlint clean on the communication stack, "
            "race detector silent on fault-free RDMA run" in out
        )

    def test_success_exits_zero(self, monkeypatch, capsys):
        report = self.fake_report(("energy conservation", True))
        monkeypatch.setattr(
            "repro.selfcheck.run_selfcheck", lambda fault_plan=None: report
        )
        assert repro_cli.main(["--selfcheck"]) == 0
        assert "FAILED" not in capsys.readouterr().out

    def test_analysis_battery_is_registered(self):
        """The real battery wires the four analysis checks in."""
        import inspect

        from repro import selfcheck

        assert hasattr(selfcheck, "_analysis_checks")
        source = inspect.getsource(selfcheck.run_selfcheck)
        assert "_analysis_checks" in source


class TestFindingDeterminism:
    """Merged findings must serialize byte-identically run to run."""

    @staticmethod
    def _finding(rule, path, message, line=1):
        from repro.analysis.findings import Finding

        return Finding(rule=rule, path=path, line=line, message=message)

    def test_normalize_is_order_independent(self):
        from repro.analysis.findings import AnalysisReport

        items = [
            self._finding("CL004", "b.py", "stage order"),
            self._finding("CL001", "a.py", "ring depth"),
            self._finding("HB001", "<trace>", "fence overlap"),
            self._finding("CL001", "a.py", "another depth", line=9),
        ]
        forward = AnalysisReport(tool="analyze")
        backward = AnalysisReport(tool="analyze")
        for f in items:
            forward.add(f)
        for f in reversed(items):
            backward.add(f)
        forward.normalize()
        backward.normalize()
        assert forward.render_json() == backward.render_json()

    def test_normalize_dedupes_identical_findings(self):
        from repro.analysis.findings import AnalysisReport

        report = AnalysisReport(tool="analyze")
        report.add(self._finding("CL001", "a.py", "ring depth"))
        report.add(self._finding("CL001", "a.py", "ring depth"))
        report.normalize()
        assert len(report.findings) == 1

    def test_analyze_json_is_byte_stable(self, capsys):
        """Two identical invocations print identical bytes."""
        assert analyze_main(["--no-dynamic", "--json"]) == 0
        first = capsys.readouterr().out
        assert analyze_main(["--no-dynamic", "--json"]) == 0
        second = capsys.readouterr().out
        assert first == second


class TestVerifyCli:
    """`repro verify` wiring: scenario filters, reports, mutations."""

    SMALL = "equivalence-off/g2x1x1/c1.3/newton-on/off"

    def test_single_scenario_proves_and_exits_zero(self, capsys):
        from repro.analysis.protomc.cli import main as verify_main

        assert verify_main(["--scenario", self.SMALL]) == 0
        out = capsys.readouterr().out
        assert f"verify {self.SMALL}" in out and ": ok states=" in out
        assert "1/1 scenario(s) proven" in out

    def test_report_document_shape(self, tmp_path, capsys):
        from repro.analysis.protomc.cli import REPORT_SCHEMA
        from repro.analysis.protomc.cli import main as verify_main

        path = tmp_path / "verify.json"
        assert verify_main(
            ["--scenario", self.SMALL, "--quiet", "--report", str(path)]
        ) == 0
        doc = json.loads(path.read_text())
        assert doc["schema"] == REPORT_SCHEMA
        assert doc["summary"]["checked"] == 1
        assert doc["summary"]["proven"] == 1
        assert doc["scenarios"][0]["ok"] is True

    def test_unknown_scenario_exits_two(self, capsys):
        from repro.analysis.protomc.cli import main as verify_main

        assert verify_main(["--scenario", "no/such/scenario"]) == 2

    def test_mutation_battery_exits_zero(self, capsys):
        from repro.analysis.protomc.cli import main as verify_main

        assert verify_main(["--mutations"]) == 0
        out = capsys.readouterr().out
        assert "5/5 caught" in out

    def test_repro_cli_routes_verify(self, capsys):
        assert repro_cli.main(
            ["verify", "--scenario", self.SMALL, "--quiet"]
        ) == 0
