"""Protocol model checker: extraction facts, properties, mutations, fleet."""

import pytest

from repro.analysis.protomc import (
    MUTATIONS,
    PROPERTIES,
    CommModel,
    Op,
    base_model,
    build_programs,
    degradation_ladder,
    findings_from,
    model_from_exchange,
    model_from_scenario,
    replay,
    run_mutation_battery,
    verify_model,
    verify_scenario,
)
from repro.analysis.protomc.extract import grid_peer
from repro.analysis.protomc.model import FENCE, RECV, SEND


class TestExtraction:
    """Programs extracted from CommPlan conventions match Table 1."""

    def test_half_shell_newton_route_count(self):
        """Newton-on p2p: 13 sends + 13 recvs per rank per stage."""
        programs = build_programs(
            (2, 2, 2), "p2p", newton=True, radius=1, rdma=False,
            stage_order=("borders",), atoms=8,
        )
        for rank, ops in enumerate(programs):
            sends = [o for o in ops if o.kind == SEND]
            recvs = [o for o in ops if o.kind == RECV]
            assert len(sends) == 13, f"rank {rank}: {len(sends)} sends"
            assert len(recvs) == 13

    def test_full_shell_no_newton_route_count(self):
        """Newton-off: the full 26-shell both ways."""
        programs = build_programs(
            (2, 2, 2), "p2p", newton=False, radius=1, rdma=False,
            stage_order=("borders",), atoms=8,
        )
        sends = [o for o in programs[0] if o.kind == SEND]
        assert len(sends) == 26

    def test_self_routes_are_skipped(self):
        """On a 1x1x1 grid every peer is self: no comm ops at all."""
        programs = build_programs(
            (1, 1, 1), "p2p", newton=True, radius=1, rdma=False,
            stage_order=("borders", "forward", "reverse"), atoms=8,
        )
        assert programs == [[]] or all(not ops for ops in programs)

    def test_send_recv_tags_pair_up(self):
        """Every send's (peer, tag) appears as a recv on the peer."""
        programs = build_programs(
            (2, 2, 1), "p2p", newton=True, radius=1, rdma=False,
            stage_order=("borders", "forward", "reverse"), atoms=8,
        )
        recv_keys = {
            (rank, op.peer, op.tag)
            for rank, ops in enumerate(programs)
            for op in ops if op.kind == RECV
        }
        for rank, ops in enumerate(programs):
            for op in ops:
                if op.kind == SEND:
                    assert (op.peer, rank, op.tag) in recv_keys

    def test_grid_peer_wraps_periodically(self):
        assert grid_peer(0, (1, 0, 0), (2, 1, 1)) == 1
        assert grid_peer(1, (1, 0, 0), (2, 1, 1)) == 0
        assert grid_peer(0, (-1, 0, 0), (3, 1, 1)) == 2

    def test_three_stage_has_dimension_fences(self):
        programs = build_programs(
            (2, 2, 2), "3stage", newton=True, radius=1, rdma=False,
            stage_order=("borders",), atoms=8,
        )
        fences = [o for o in programs[0] if o.kind == FENCE]
        assert fences, "3stage programs must fence between dimensions"

    def test_degradation_ladder_descends(self):
        assert degradation_ladder("parallel-p2p") == (
            "parallel-p2p", "p2p", "3stage",
        )
        assert degradation_ladder("3stage") == ("3stage",)


class TestProperties:
    """Clean models prove P1-P4; the checker's verdict renders."""

    def test_base_model_verifies(self):
        result = verify_model(base_model())
        assert result.ok, result.render()
        assert result.states > 0
        assert not result.incomplete

    def test_all_properties_cataloged(self):
        assert sorted(PROPERTIES) == ["P1", "P2", "P3", "P4"]

    def test_deadlock_found_on_crossed_recvs(self):
        """Two ranks that both recv before sending: textbook deadlock."""
        t = ("x", "t", 0)
        u = ("x", "t", 1)
        programs = [
            [Op(RECV, 0, peer=1, tag=t, stage="s"),
             Op(SEND, 0, peer=1, tag=u, stage="s")],
            [Op(RECV, 1, peer=0, tag=u, stage="s"),
             Op(SEND, 1, peer=0, tag=t, stage="s")],
        ]
        model = CommModel(label="crossed", n_ranks=2, programs=programs)
        result = verify_model(model)
        assert not result.ok
        assert result.counterexamples[0].prop == "P1"

    def test_leak_found_on_unmatched_send(self):
        programs = [
            [Op(SEND, 0, peer=1, tag=("x", "t", 0), stage="s")],
            [],
        ]
        model = CommModel(label="leak", n_ranks=2, programs=programs)
        result = verify_model(model)
        assert {c.prop for c in result.counterexamples} == {"P2"}

    def test_ladder_cycle_is_p4(self):
        model = CommModel(
            label="cycle", n_ranks=1, programs=[[]],
            ladder=("p2p", "3stage", "p2p"),
        )
        result = verify_model(model)
        assert {c.prop for c in result.counterexamples} == {"P4"}

    def test_counterexample_trace_replays(self):
        programs = [
            [Op(RECV, 0, peer=1, tag=("x", "t", 0), stage="s")],
            [],
        ]
        model = CommModel(label="stuck", n_ranks=2, programs=programs)
        result = verify_model(model)
        cex = result.counterexamples[0]
        assert cex.prop == "P1"
        assert replay(model, cex)

    def test_findings_carry_property_rule(self):
        model = CommModel(
            label="cycle", n_ranks=1, programs=[[]],
            ladder=("p2p", "p2p"),
        )
        findings = findings_from([verify_model(model)])
        assert findings and findings[0].rule == "P4"
        assert findings[0].path == "cycle"


class TestMutations:
    """Every seeded protocol bug is caught by its named property."""

    @pytest.mark.parametrize("name", sorted(MUTATIONS))
    def test_mutation_caught_by_named_property(self, name):
        expected, mutate = MUTATIONS[name]
        result = verify_model(mutate(base_model()), max_states=200_000)
        assert not result.ok, f"{name}: mutation survived verification"
        props = {c.prop for c in result.counterexamples}
        assert expected in props, f"{name}: expected {expected}, got {props}"

    def test_battery_replays_every_counterexample(self):
        outcomes = run_mutation_battery()
        assert len(outcomes) == len(MUTATIONS)
        for outcome in outcomes:
            assert outcome.ok, outcome.render()
            assert outcome.replayed, outcome.render()


class TestFleetVerification:
    """Scenario documents verify end-to-end through extraction."""

    @pytest.fixture(scope="class")
    def fleet(self):
        from repro.scenarios.registry import default_fleet

        return default_fleet()

    def test_sampled_equivalence_scenario_proves(self, fleet):
        scenario = next(
            s for s in fleet
            if s["block"].startswith("equivalence")
            and s["params"]["grid"] == [2, 2, 2]
        )
        result = verify_scenario(scenario, max_states=200_000, budget_s=20.0)
        assert result.ok, result.render()

    def test_bench_rdma_scenario_proves(self, fleet):
        scenario = next(
            (s for s in fleet if s["role"] == "bench"
             and s["params"].get("rdma")), None,
        )
        if scenario is None:
            pytest.skip("no rdma bench scenario in the default fleet")
        result = verify_scenario(scenario, max_states=300_000, budget_s=20.0)
        assert result.ok, result.render()

    def test_live_exchange_model_matches_static_extraction(self):
        """Model built from a live exchange's routes also verifies."""
        from repro.scenarios.build import scenario_exchange
        from repro.scenarios.registry import default_fleet

        fleet = default_fleet()
        scenario = next(
            s for s in fleet
            if s["block"].startswith("equivalence")
            and s["params"]["grid"] == [2, 2, 2]
            and s["params"].get("newton", True)
        )
        exchange = scenario_exchange(scenario, "p2p")
        model = model_from_exchange(exchange, label="live")
        border_sends = [
            o for o in model.programs[0]
            if o.kind == SEND and o.stage == "borders"
        ]
        assert len(border_sends) == 13
        assert verify_model(model).ok

    def test_model_role_uses_canonical_grid(self, fleet):
        from repro.analysis.protomc.extract import CANONICAL_GRID

        scenario = next(s for s in fleet if s["role"] == "model")
        model = model_from_scenario(scenario)
        import math

        assert model.n_ranks == math.prod(CANONICAL_GRID)


class TestValidationLevel:
    """scenarios validate --level L2.5 rejects protocol-broken documents."""

    def test_l25_accepts_a_clean_scenario(self):
        from repro.scenarios.registry import default_fleet
        from repro.scenarios.validate import check_l25

        fleet = default_fleet()
        scenario = next(
            s for s in fleet
            if s["block"].startswith("equivalence")
            and s["params"]["grid"] == [2, 2, 1]
        )
        assert check_l25(scenario) == []

    def test_l25_is_a_registered_level(self):
        from repro.scenarios.validate import LEVELS, HINTS

        assert "L2.5" in LEVELS
        for prop in ("P1", "P2", "P3", "P4"):
            assert prop in HINTS
