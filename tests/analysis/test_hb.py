"""Happens-before detector: synthetic streams, fault replays, trace files."""

import pytest

from repro.analysis.hb import (
    HB_RULES,
    TraceEvent,
    TraceSpan,
    VectorClock,
    detect_races,
    detect_races_in_file,
    events_from_chrome,
)
from repro.faults import FAULTS, FaultPlan, FaultSpec, RetryPolicy
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.md.potentials import LennardJones
from repro.md.simulation import Simulation, SimulationConfig
from repro.obs import hbevents, observe


def ev(name, track, ts, **args):
    cat = {"msg": "msg", "recv": "recv"}.get(name, "hb")
    return TraceEvent(name=name, cat=cat, track=track, ts=ts, args=args)


class TestVectorClock:
    def test_tick_join_dominates(self):
        a, b = VectorClock(), VectorClock()
        a.tick("rank0")
        b.tick("rank1")
        assert not a.dominates(b) and not b.dominates(a)
        b.join(a)
        assert b.dominates(a)

    def test_copy_does_not_alias(self):
        a = VectorClock({"rank0": 1})
        c = a.copy()
        a.tick("rank0")
        assert c.counts["rank0"] == 1


class TestSyntheticStreams:
    """Handcrafted event sequences exercise each hazard shape directly."""

    def test_put_land_read_is_silent(self):
        events = [
            ev("hb-put", "rank0", 0.1, res="stag7", lo=0, n=8, put=1, inflight=0),
            ev("hb-land", "nic", 0.2, res="stag7", lo=0, n=8, put=1),
            ev("hb-read", "rank1", 0.3, res="stag7", ok=1),
        ]
        assert detect_races(events=events).clean

    def test_read_of_unlanded_put_flags_hb001(self):
        events = [
            ev("hb-put", "rank0", 0.1, res="stag7", lo=0, n=8, put=1, inflight=1),
            ev("hb-read", "rank1", 0.2, res="stag7", ok=1),
            ev("hb-land", "nic", 0.3, res="stag7", lo=0, n=8, put=1),
        ]
        report = detect_races(events=events)
        assert [f.rule for f in report.findings] == ["HB001"]
        assert "put #1" in report.findings[0].message

    def test_ring_slot_read_overlaps_pending_ring_put(self):
        """A bare ring{id} put covers every ring{id}/slot{k} read."""
        events = [
            ev("hb-put", "rank0", 0.1, res="ring9", lo=0, n=4, put=1, inflight=1),
            ev("hb-read", "rank1", 0.2, res="ring9/slot0", ok=0),
        ]
        report = detect_races(events=events)
        rules = [f.rule for f in report.findings]
        assert "HB001" in rules
        stale = next(f for f in report.findings if "in flight" in f.message)
        assert "consume found the slot clean" in stale.detail

    def test_fence_with_pending_put_flags_hb001(self):
        events = [
            ev("hb-put", "rank0", 0.1, res="stag7", lo=32, n=8, put=1, inflight=1),
            ev("hb-fence", "comm", 0.2, stage="forward", pending=1),
            ev("hb-land", "nic", 0.3, res="stag7", lo=32, n=8, put=1),
        ]
        report = detect_races(events=events)
        assert [f.rule for f in report.findings] == ["HB001"]
        assert "fence at stage 'forward'" in report.findings[0].message
        assert "[32, 40)" in report.findings[0].message

    def test_never_landed_put_flags_hb001(self):
        events = [
            ev("hb-put", "rank0", 0.1, res="stag7", lo=0, n=8, put=1, inflight=1),
        ]
        report = detect_races(events=events)
        assert [f.rule for f in report.findings] == ["HB001"]
        assert "never landed" in report.findings[0].message

    def test_overwrite_of_unconsumed_slot_flags_hb002(self):
        events = [
            ev("hb-write", "rank0", 0.1, res="ring9/slot0", ok=1),
            ev("hb-write", "rank0", 0.2, res="ring9/slot0", ok=1),
        ]
        report = detect_races(events=events)
        assert [f.rule for f in report.findings] == ["HB002"]
        assert "rewrote ring9/slot0" in report.findings[0].message

    def test_write_consume_write_is_silent(self):
        events = [
            ev("hb-write", "rank0", 0.1, res="ring9/slot0", ok=1),
            ev("hb-read", "rank1", 0.2, res="ring9/slot0", ok=1),
            ev("hb-write", "rank0", 0.3, res="ring9/slot0", ok=1),
        ]
        assert detect_races(events=events).clean

    def test_consume_with_nothing_in_flight_is_cursor_desync(self):
        events = [ev("hb-read", "rank1", 0.2, res="ring9/slot2", ok=0)]
        report = detect_races(events=events)
        assert [f.rule for f in report.findings] == ["HB001"]
        assert "cursor desync" in report.findings[0].message

    def test_retry_polls_do_not_duplicate_findings(self):
        """Hazards dedupe by (rule, res, put): one finding per stale put."""
        events = [
            ev("hb-put", "rank0", 0.1, res="ring9", lo=0, n=4, put=1, inflight=1),
            ev("hb-read", "rank1", 0.2, res="ring9/slot0", ok=0),
            ev("hb-read", "rank1", 0.3, res="ring9/slot0", ok=0),
            ev("hb-read", "rank1", 0.4, res="ring9/slot0", ok=0),
            ev("hb-land", "nic", 0.5, res="ring9", lo=0, n=4, put=1),
            ev("hb-read", "rank1", 0.6, res="ring9/slot0", ok=1),
        ]
        report = detect_races(events=events)
        assert len([f for f in report.findings if "in flight" in f.message]) == 1

    def test_hazard_anchored_to_enclosing_span(self):
        spans = [TraceSpan("p2p.forward-rdma", "comm", "rank0", 0.0, 1.0)]
        events = [
            ev("hb-put", "rank0", 0.1, res="stag7", lo=0, n=8, put=1, inflight=1),
            ev("hb-read", "rank1", 0.2, res="stag7", ok=1),
        ]
        report = detect_races(events=events, spans=spans)
        assert "during span 'p2p.forward-rdma'" in report.findings[0].detail

    def test_message_edge_orders_read_after_land(self):
        """A land relayed through a message makes the later read safe."""
        events = [
            ev("hb-put", "rank0", 0.1, res="stag7", lo=0, n=8, put=1, inflight=0),
            ev("hb-land", "nic", 0.2, res="stag7", lo=0, n=8, put=1),
            ev("msg", "rank0", 0.3, src=0, dst=1, phase="border"),
            ev("recv", "rank1", 0.4, src=0, dst=1, phase="border"),
            ev("hb-read", "rank1", 0.5, res="stag7", ok=1),
        ]
        assert detect_races(events=events).clean


def probe_sim():
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice((4, 4, 4), edge)
    v = maxwell_velocities(x.shape[0], 1.44, seed=7)
    cfg = SimulationConfig(
        dt=0.005, skin=0.3, pattern="p2p", rdma=True, neighbor_every=3
    )
    return Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))


def stale_plan(kind):
    return FaultPlan(
        seed=3,
        policy=RetryPolicy(),
        faults=(FaultSpec(kind=kind, count=1, severity=2),),
    )


class TestFaultReplay:
    """The detector flags exactly the §3.4 hazards ``faults/`` injects."""

    def test_clean_rdma_run_is_silent(self):
        hbevents.reset()
        with observe(metrics=False) as (tracer, _):
            probe_sim().run(6)
            report = detect_races(tracer)
        assert report.clean, report.render()
        assert report.events_analyzed > 0

    def test_rdma_stale_plan_flags_forward_fence(self):
        hbevents.reset()
        with observe(metrics=False) as (tracer, _):
            with FAULTS.inject(stale_plan("rdma-stale")):
                probe_sim().run(6)
            report = detect_races(tracer)
        assert not report.clean
        assert {f.rule for f in report.findings} == {"HB001"}
        fence = next(f for f in report.findings if "fence" in f.message)
        assert "during span 'p2p.forward-rdma'" in fence.detail
        assert "still in flight" in fence.message

    def test_ring_stale_plan_flags_reverse_consume(self):
        hbevents.reset()
        with observe(metrics=False) as (tracer, _):
            with FAULTS.inject(stale_plan("ring-stale")):
                probe_sim().run(6)
            report = detect_races(tracer)
        assert not report.clean
        assert {f.rule for f in report.findings} == {"HB001"}
        stale = next(f for f in report.findings if "in flight" in f.message)
        assert "during span 'p2p.reverse-rdma'" in stale.detail


class TestChromeRoundTrip:
    """detect_races_in_file sees the same hazards as the live tracer."""

    def test_exported_trace_reproduces_findings(self, tmp_path):
        from repro.obs.export import write_chrome_trace

        hbevents.reset()
        path = str(tmp_path / "stale.json")
        with observe(metrics=False) as (tracer, _):
            with FAULTS.inject(stale_plan("rdma-stale")):
                probe_sim().run(6)
            live = detect_races(tracer)
            write_chrome_trace(path, tracer)
        replayed = detect_races_in_file(path)
        assert replayed.files_analyzed == [path]
        assert sorted(f.message for f in replayed.findings) == sorted(
            f.message for f in live.findings
        )
        assert replayed.events_analyzed == live.events_analyzed

    def test_events_from_chrome_skips_model_process(self):
        doc = {
            "traceEvents": [
                {"ph": "M", "pid": 1, "tid": 3, "name": "thread_name",
                 "args": {"name": "rank0"}},
                {"ph": "i", "pid": 1, "tid": 3, "name": "hb-put", "cat": "hb",
                 "ts": 100.0, "args": {"res": "stag1", "put": 1}},
                {"ph": "i", "pid": 2, "tid": 3, "name": "hb-put", "cat": "hb",
                 "ts": 50.0, "args": {"res": "stag2", "put": 1}},
                {"ph": "X", "pid": 1, "tid": 3, "name": "p2p.forward-rdma",
                 "cat": "comm", "ts": 0.0, "dur": 500.0},
            ]
        }
        events, spans = events_from_chrome(doc)
        assert [e.track for e in events] == ["rank0"]
        assert events[0].ts == pytest.approx(1e-4)
        assert [s.name for s in spans] == ["p2p.forward-rdma"]


def test_rule_catalog_is_stable():
    assert sorted(HB_RULES) == ["HB001", "HB002"]


class TestEdgeCases:
    """Degenerate traces must be analyzed, not crash the detector."""

    def test_empty_trace_is_clean(self):
        report = detect_races(events=[], spans=[])
        assert report.clean
        assert report.events_analyzed == 0

    def test_single_rank_trace_is_clean(self):
        """One rank's put/land/read stream: nothing to race against."""
        events = [
            ev("hb-put", "rank0", 0.1, res="stag0", lo=0, n=4, put=1, inflight=0),
            ev("hb-land", "nic", 0.2, res="stag0", lo=0, n=4, put=1),
            ev("hb-read", "rank0", 0.3, res="stag0", ok=1),
        ]
        report = detect_races(events=events, spans=[])
        assert report.clean, report.render()

    def test_duplicate_fence_instants_flag_once(self):
        """The same pending put seen at two identical fence timestamps
        produces one deduplicated HB001 finding, not a crash or two."""
        events = [
            ev("hb-put", "rank0", 0.1, res="stag0", lo=0, n=4, put=1, inflight=1),
            ev("hb-fence", "comm", 0.2, stage="forward", pending=1),
            ev("hb-fence", "comm", 0.2, stage="forward", pending=1),
        ]
        report = detect_races(events=events, spans=[])
        hb001 = [f for f in report.findings if f.rule == "HB001"]
        assert len(hb001) >= 1
        keys = {(f.rule, f.message) for f in report.findings}
        assert len(keys) == len(report.findings), "duplicate findings emitted"

    def test_chrome_trace_with_unknown_cats_is_skipped_not_crashed(self):
        """Foreign categories parse fine and are ignored by the detector."""
        doc = {
            "traceEvents": [
                {"ph": "M", "pid": 1, "tid": 3, "name": "thread_name",
                 "args": {"name": "rank0"}},
                {"ph": "i", "pid": 1, "tid": 3, "name": "gc",
                 "cat": "v8.gc", "ts": 100, "args": {"heap": 1}},
                {"ph": "i", "pid": 1, "tid": 3, "name": "blink.user_timing",
                 "cat": "blink", "ts": 200, "args": {}},
                {"ph": "X", "pid": 1, "tid": 3, "name": "frame",
                 "cat": "gpu", "ts": 50, "dur": 400},
                {"ph": "i", "pid": 2, "tid": 1, "name": "other-process",
                 "cat": "hb", "ts": 300, "args": {}},
            ]
        }
        events, spans = events_from_chrome(doc)
        assert len(events) == 2  # pid-2 event dropped, both pid-1 instants kept
        assert len(spans) == 1
        report = detect_races(events=events, spans=spans)
        assert report.clean
        assert report.events_analyzed == 0  # nothing in hb/msg/recv
