"""Built-in self-check battery."""

import pytest

from repro.selfcheck import run_selfcheck


@pytest.fixture(scope="module")
def report():
    return run_selfcheck(cells=(4, 4, 4), steps=10)


class TestSelfCheck:
    def test_all_checks_pass(self, report):
        failing = [c.name for c in report.checks if not c.passed]
        assert report.ok, f"failing checks: {failing}"

    def test_covers_every_variant(self, report):
        names = " ".join(c.name for c in report.checks)
        for label in ("3stage", "p2p", "p2p+rdma", "parallel-p2p+rdma"):
            assert label in names

    def test_covers_table1_claims(self, report):
        names = [c.name for c in report.checks]
        assert any("Table 1" in n for n in names)
        assert any("Newton" in n for n in names)

    def test_render_readable(self, report):
        text = report.render()
        assert "PASS" in text
        assert f"{len(report.checks)}/{len(report.checks)} checks passed" in text

    def test_cli_flag(self, capsys):
        from repro.cli import main

        assert main(["--selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "self-check" in out
