"""Integration: EAM runs — mid-pair comm, check-yes allreduce, full lists."""

import numpy as np
import pytest

from repro import SerialReference, Simulation, SimulationConfig, make_cu_like_eam
from repro.md.lattice import fcc_lattice, maxwell_velocities
from repro.md.potentials import SuttonChenEAM


def copper_system(cells=(4, 4, 4), temperature=0.02, seed=9):
    x, box = fcc_lattice(cells, 3.615)
    v = maxwell_velocities(x.shape[0], temperature, seed=seed)
    return x, v, box


def eam_config(pattern="p2p", **kw):
    defaults = dict(
        dt=0.002, skin=1.0, pattern=pattern,
        neighbor_every=5, neighbor_check=True,
    )
    defaults.update(kw)
    return SimulationConfig(**defaults)


@pytest.fixture(scope="module")
def serial_eam():
    x, v, box = copper_system()
    ref = SerialReference(x, v, box, SuttonChenEAM(cutoff=4.95), dt=0.002)
    ref.run(15)
    return x, v, box, ref


class TestPatternsVsSerial:
    @pytest.mark.parametrize(
        "pattern,rdma",
        [("3stage", False), ("p2p", False), ("p2p", True), ("parallel-p2p", True)],
    )
    def test_eam_trajectory_matches_serial(self, pattern, rdma, serial_eam):
        x, v, box, ref = serial_eam
        sim = Simulation(
            x, v, box, SuttonChenEAM(cutoff=4.95),
            eam_config(pattern, rdma=rdma), grid=(2, 2, 1),
        )
        sim.run(15)
        # Compare modulo periodic images: the parallel driver only wraps
        # at migration, the serial reference wraps every step.
        d = box.minimum_image(sim.gather_positions() - ref.x)
        assert np.abs(d).max() < 1e-9

    def test_eam_pressure_trace_matches(self, serial_eam):
        """The EAM half of Fig. 11."""
        x, v, box, ref = serial_eam
        sim = Simulation(
            x, v, box, SuttonChenEAM(cutoff=4.95),
            eam_config("parallel-p2p", rdma=True), grid=(2, 2, 1),
        )
        sim.run(15)
        s = sim.sample_thermo()
        r = ref.sample_thermo()
        assert s.pressure == pytest.approx(r.pressure, abs=1e-12)
        assert s.total_energy == pytest.approx(r.total_energy, abs=1e-8)

    def test_tabulated_eam_runs_parallel(self):
        x, v, box = copper_system(cells=(3, 3, 3))
        sim = Simulation(
            x, v, box, make_cu_like_eam(), eam_config("p2p"), grid=(1, 1, 1)
        )
        sim.run(5)
        assert np.isfinite(sim.sample_thermo().total_energy)


class TestMidPairCommunication:
    def test_pair_stage_traffic_present(self):
        """EAM must generate the two extra pair-stage exchanges the paper
        describes (density reverse-sum + fp forward)."""
        x, v, box = copper_system()
        sim = Simulation(
            x, v, box, SuttonChenEAM(cutoff=4.95), eam_config("p2p"), grid=(2, 2, 1)
        )
        sim.setup()
        log = sim.world.transport.log
        assert log.count("pair-reverse") > 0
        assert log.count("pair-forward") > 0

    def test_lj_has_no_mid_pair_traffic(self):
        from repro import quick_lj_simulation

        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 1))
        sim.setup()
        log = sim.world.transport.log
        assert log.count("pair-reverse") == 0
        assert log.count("pair-forward") == 0

    def test_full_list_skips_density_reverse(self):
        """Newton off: density is complete locally; only fp forwards."""
        x, v, box = copper_system()
        sim = Simulation(
            x, v, box, SuttonChenEAM(cutoff=4.95),
            eam_config("p2p", newton=False), grid=(2, 2, 1),
        )
        sim.setup()
        log = sim.world.transport.log
        assert log.count("pair-reverse") == 0
        assert log.count("pair-forward") > 0


class TestNewtonOff:
    def test_newton_off_matches_serial(self, serial_eam):
        x, v, box, ref = serial_eam
        sim = Simulation(
            x, v, box, SuttonChenEAM(cutoff=4.95),
            eam_config("p2p", newton=False), grid=(2, 2, 1),
        )
        sim.run(15)
        d = box.minimum_image(sim.gather_positions() - ref.x)
        assert np.abs(d).max() < 1e-9

    def test_newton_off_doubles_border_traffic(self):
        """Fig. 15 premise: full lists need the full 26-neighbor shell."""
        # Jitter the lattice: perfect lattice columns sit exactly on the
        # border thresholds and bias the half/full ratio.
        x, v, box = copper_system()
        x = x + np.random.default_rng(3).uniform(-0.3, 0.3, size=x.shape)
        sims = {}
        for newton in (True, False):
            sim = Simulation(
                x, v, box, SuttonChenEAM(cutoff=4.95),
                eam_config("p2p", newton=newton), grid=(2, 2, 1),
            )
            sim.setup()
            sims[newton] = sum(sim.atoms_of(r).nghost for r in range(4))
        assert sims[False] == pytest.approx(2 * sims[True], rel=0.05)

    def test_newton_off_skips_reverse_stage(self):
        x, v, box = copper_system()
        sim = Simulation(
            x, v, box, SuttonChenEAM(cutoff=4.95),
            eam_config("p2p", newton=False), grid=(2, 2, 1),
        )
        sim.run(2)
        assert sim.world.transport.log.count("reverse") == 0


class TestCheckYesPolicy:
    def test_allreduce_decision_recorded(self):
        x, v, box = copper_system(temperature=0.2)
        sim = Simulation(
            x, v, box, SuttonChenEAM(cutoff=4.95),
            eam_config("p2p", neighbor_check=True, neighbor_every=5),
            grid=(2, 2, 1),
        )
        sim.run(20)
        # 20 steps at every=5 -> up to 4 global checks ran; whether they
        # triggered depends on motion, but the run must stay consistent.
        assert sim.total_local_atoms() == sim.natoms

    def test_energy_conserved_eam(self):
        x, v, box = copper_system(temperature=0.01)
        sim = Simulation(
            x, v, box, SuttonChenEAM(cutoff=4.95), eam_config("p2p"), grid=(2, 2, 1)
        )
        sim.setup()
        e0 = sim.sample_thermo().total_energy
        sim.run(40)
        assert sim.sample_thermo().total_energy == pytest.approx(e0, rel=1e-5)
