"""Integration: full LJ runs across patterns, rebuilds, conservation."""

import numpy as np
import pytest

from repro import (
    LennardJones,
    SerialReference,
    Simulation,
    SimulationConfig,
    quick_lj_simulation,
)
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities

PATTERNS = [
    ("3stage", False),
    ("p2p", False),
    ("p2p", True),
    ("parallel-p2p", False),
    ("parallel-p2p", True),
]


@pytest.fixture(scope="module")
def serial_trace():
    """Serial reference trajectory: 30 steps of a 500-atom LJ melt."""
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice((5, 5, 5), edge)
    v = maxwell_velocities(x.shape[0], 1.44, seed=17)
    ref = SerialReference(x, v, box, LennardJones(cutoff=2.5), dt=0.005)
    samples = []
    for _ in range(30):
        ref.step()
        samples.append(ref.sample_thermo())
    return ref, samples


class TestPatternsVsSerial:
    @pytest.mark.parametrize("pattern,rdma", PATTERNS)
    def test_trajectory_matches_serial(self, pattern, rdma, serial_trace):
        ref, _ = serial_trace
        sim = quick_lj_simulation(
            cells=(5, 5, 5), ranks=(2, 2, 2), pattern=pattern, rdma=rdma,
            seed=17, neighbor_every=10,
        )
        sim.run(30)
        x = sim.gather_positions()
        # Same physics to floating-point accumulation noise.
        assert np.allclose(x, ref.x, atol=1e-8)
        v = sim.gather_velocities()
        assert np.allclose(v, ref.v, atol=1e-8)

    @pytest.mark.parametrize("pattern,rdma", PATTERNS)
    def test_pressure_matches_serial(self, pattern, rdma, serial_trace):
        """Fig. 11's accuracy claim: the optimized code's pressure trace
        is indistinguishable from the reference."""
        _, samples = serial_trace
        sim = quick_lj_simulation(
            cells=(5, 5, 5), ranks=(2, 2, 2), pattern=pattern, rdma=rdma,
            seed=17, neighbor_every=10, thermo_every=10,
        )
        sim.run(30)
        for mine, ref_s in zip(sim.samples, samples[9::10]):
            assert mine.pressure == pytest.approx(ref_s.pressure, abs=1e-10)


class TestConservation:
    @pytest.mark.parametrize("pattern", ["3stage", "p2p", "parallel-p2p"])
    def test_energy_conservation(self, pattern):
        sim = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), pattern=pattern,
            seed=30, neighbor_every=5,
        )
        sim.setup()
        e0 = sim.sample_thermo().total_energy
        sim.run(60)
        e1 = sim.sample_thermo().total_energy
        # Truncated (unshifted) LJ at melt temperature drifts slightly as
        # pairs cross the cutoff; the bound catches integrator bugs.
        assert e1 == pytest.approx(e0, rel=5e-3)

    def test_momentum_conservation(self):
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 2), seed=31)
        sim.run(40)
        v = sim.gather_velocities()
        assert np.allclose(v.sum(axis=0), 0.0, atol=1e-9)

    def test_atom_count_conserved_across_migration(self):
        sim = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), seed=32, neighbor_every=5
        )
        sim.run(40)
        assert sim.total_local_atoms() == sim.natoms
        assert sim.rebuilds >= 7


class TestRebuildPolicies:
    def test_check_no_rebuilds_on_cadence(self):
        sim = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), seed=33,
            neighbor_every=10, neighbor_check=False,
        )
        sim.run(30)
        assert sim.rebuilds == 3

    def test_check_yes_can_skip_rebuilds(self):
        """Cold start (tiny velocities): displacement stays under skin/2,
        so check-yes skips rebuilds that check-no would do."""
        edge = lj_density_to_cell(0.8442)
        x, box = fcc_lattice((4, 4, 4), edge)
        v = maxwell_velocities(x.shape[0], 0.0001, seed=34)
        cfg = SimulationConfig(
            dt=0.005, skin=0.3, pattern="p2p",
            neighbor_every=5, neighbor_check=True,
        )
        sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
        sim.run(20)
        assert sim.rebuilds == 0

    def test_check_yes_triggers_on_motion(self):
        sim = quick_lj_simulation(
            cells=(4, 4, 4), ranks=(2, 2, 2), seed=35, temperature=2.5,
            neighbor_every=5, neighbor_check=True,
        )
        sim.run(40)
        assert sim.rebuilds >= 2


class TestDriverBehaviour:
    def test_setup_idempotent_entry(self):
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 1, 1), seed=36)
        sim.step()  # implicit setup
        assert sim.step_count == 1

    def test_stage_timers_populated(self):
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 1, 1), seed=37)
        sim.run(5)
        from repro.md import Stage

        for stage in (Stage.PAIR, Stage.COMM, Stage.MODIFY):
            assert sim.timers.wall[stage] > 0

    def test_transport_drained_per_step(self):
        sim = quick_lj_simulation(cells=(4, 4, 4), ranks=(2, 2, 1), seed=38)
        sim.run(3)
        sim.world.transport.assert_drained()

    def test_oversubscribed_grid_rejected(self):
        with pytest.raises(ValueError):
            quick_lj_simulation(cells=(4, 4, 4), ranks=(8, 1, 1))

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            quick_lj_simulation(cells=(4, 4, 4), ranks=(1, 1, 1), pattern="telepathy")

    def test_bad_shapes_rejected(self):
        from repro.md import Box

        with pytest.raises(ValueError):
            Simulation(
                np.zeros((4, 3)),
                np.zeros((5, 3)),
                Box((0, 0, 0), (10, 10, 10)),
                LennardJones(),
                SimulationConfig(),
                grid=(1, 1, 1),
            )
