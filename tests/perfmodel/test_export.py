"""CSV export tests."""

import csv
import io

import pytest

from repro.perfmodel import StageModel, strong_scaling, variant_by_name
from repro.perfmodel.export import breakdown_to_csv, scaling_to_csv
from repro.perfmodel.stagemodel import LJ_WORKLOAD_65K, Workload
from repro.perfmodel.scaling import STRONG_LJ_ATOMS


@pytest.fixture(scope="module")
def points():
    w = Workload("lj", "lj", STRONG_LJ_ATOMS, 0.8442, 2.8, 0.005, rebuild_every=20)
    return strong_scaling(w, "opt", (768, 2160, 6144))


class TestScalingCSV:
    def test_row_per_point(self, points):
        text = scaling_to_csv(points)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 3
        assert [int(r["nodes"]) for r in rows] == [768, 2160, 6144]

    def test_values_roundtrip(self, points):
        rows = list(csv.DictReader(io.StringIO(scaling_to_csv(points))))
        assert float(rows[0]["efficiency"]) == pytest.approx(1.0)
        assert float(rows[0]["step_seconds"]) == pytest.approx(
            points[0].step_time, rel=1e-6
        )
        stage_sum = sum(
            float(rows[1][f"{s}_seconds"])
            for s in ("pair", "neigh", "comm", "modify", "other")
        )
        assert stage_sum == pytest.approx(points[1].step_time, rel=1e-5)

    def test_writes_file(self, points, tmp_path):
        p = tmp_path / "scaling.csv"
        scaling_to_csv(points, p)
        assert p.read_text().startswith("nodes,")


class TestBreakdownCSV:
    def test_breakdown_rows(self):
        model = StageModel()
        results = [
            model.step_times(LJ_WORKLOAD_65K, 768, variant_by_name(v))
            for v in ("ref", "opt")
        ]
        rows = list(csv.DictReader(io.StringIO(breakdown_to_csv(results))))
        assert [r["variant"] for r in rows] == ["ref", "opt"]
        for r in rows:
            pct = sum(
                float(r[f"{s}_pct"])
                for s in ("pair", "neigh", "comm", "modify", "other")
            )
            assert pct == pytest.approx(100.0, abs=0.05)
