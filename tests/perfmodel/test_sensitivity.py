"""Calibration-sensitivity tests: the story must not be a fit artifact."""

import pytest

from repro.machine import FUGAKU
from repro.perfmodel.sensitivity import (
    ESTIMATED_PARAMS,
    evaluate_claims,
    render,
    sweep,
)


@pytest.fixture(scope="module")
def rows():
    return sweep(factors=(0.7, 1.0, 1.3))


class TestBaseline:
    def test_all_claims_hold_at_calibration(self):
        claims = evaluate_claims(FUGAKU)
        assert claims.all_hold, claims.failed()

    def test_failed_lists_names(self):
        from dataclasses import replace

        claims = evaluate_claims(FUGAKU)
        broken = replace(claims, mpi_p2p_loses=False)
        assert broken.failed() == ["mpi_p2p_loses"]


class TestRobustness:
    def test_every_estimated_constant_covered(self, rows):
        assert {r.name for r in rows} == set(ESTIMATED_PARAMS)

    def test_claims_robust_to_30_percent(self, rows):
        """+/-30% on any single estimated constant must not flip any
        qualitative claim of the paper."""
        for row in rows:
            for factor, claims in row.results.items():
                assert claims.all_hold, (
                    f"{row.name} x{factor}: failed {claims.failed()}"
                )

    def test_robust_range_brackets_unity(self, rows):
        for row in rows:
            lo, hi = row.robust_range
            assert lo <= 1.0 <= hi

    def test_render(self, rows):
        text = render(rows)
        assert "Calibration sensitivity" in text
        assert "mpi_t_inj" in text
