"""Stage-model tests: the paper's quantitative claims as assertion bands.

The reproduction contract is *shape*, not absolute microseconds: who
wins, by roughly what factor, where crossovers fall.  Bands are set
around the paper's numbers with generous but meaningful margins.
"""

import pytest

from repro.perfmodel import (
    EAM_WORKLOAD_1M7,
    EAM_WORKLOAD_65K,
    LJ_WORKLOAD_1M7,
    LJ_WORKLOAD_65K,
    StageModel,
    variant_by_name,
)
from repro.perfmodel.scaling import STRONG_EAM_ATOMS, STRONG_LJ_ATOMS
from repro.perfmodel.stagemodel import Workload


@pytest.fixture(scope="module")
def model():
    return StageModel()


def lj_strong():
    return Workload("lj", "lj", STRONG_LJ_ATOMS, 0.8442, 2.8, 0.005, rebuild_every=20)


def eam_strong():
    return Workload(
        "eam", "eam", STRONG_EAM_ATOMS, 0.0847, 5.95, 0.005,
        rebuild_every=20, allreduce_every=5,
    )


class TestBasics:
    def test_atoms_per_rank(self, model):
        assert model.atoms_per_rank(lj_strong(), 36864) == pytest.approx(28.4, rel=0.01)

    def test_paper_last_point_atoms_per_core(self, model):
        """Section 4.3.1: 2.3 and 1.9 atoms per core at 36 864 nodes."""
        assert STRONG_LJ_ATOMS / (36864 * 48) == pytest.approx(2.37, abs=0.1)
        assert STRONG_EAM_ATOMS / (36864 * 48) == pytest.approx(1.95, abs=0.1)

    def test_imbalance_grows_with_scale(self, model):
        w = lj_strong()
        assert model.imbalance(w, 36864) > model.imbalance(w, 768) > 1.0

    def test_imbalance_capped(self, model):
        w = Workload("tiny", "lj", 1000, 0.8442, 2.8, 0.005, rebuild_every=20)
        assert model.imbalance(w, 36864) <= model.calib.imbalance_cap

    def test_stage_result_percentages_sum_to_100(self, model):
        res = model.step_times(lj_strong(), 768, variant_by_name("ref"))
        assert sum(res.percent(s) for s in res.stages) == pytest.approx(100.0)


class TestCommRounds:
    def test_opt_round_faster_than_ref(self, model):
        w = lj_strong()
        t_ref = model.exchange_round_time(variant_by_name("ref"), w, 36864)
        t_opt = model.exchange_round_time(variant_by_name("opt"), w, 36864)
        assert t_opt < t_ref / 3

    def test_mpi_p2p_round_slower_than_mpi_3stage(self, model):
        w = LJ_WORKLOAD_65K
        t_3s = model.exchange_round_time(variant_by_name("ref"), w, 768)
        t_p2p = model.exchange_round_time(variant_by_name("mpi_p2p"), w, 768)
        assert t_p2p > t_3s

    def test_utofu_p2p_round_faster_than_utofu_3stage(self, model):
        w = LJ_WORKLOAD_65K
        t_3s = model.exchange_round_time(variant_by_name("utofu_3stage"), w, 768)
        t_p2p = model.exchange_round_time(variant_by_name("4tni_p2p"), w, 768)
        assert t_p2p < t_3s


class TestTable3Shapes:
    """Stage percentage bands around Table 3."""

    def test_origin_lj_comm_dominates(self, model):
        res = model.step_times(lj_strong(), 36864, variant_by_name("ref"))
        assert 55 <= res.percent("Comm") <= 80  # paper: 64.85 %

    def test_opt_lj_comm_reduced_but_still_largest(self, model):
        res = model.step_times(lj_strong(), 36864, variant_by_name("opt"))
        assert 35 <= res.percent("Comm") <= 60  # paper: 43.67 %

    def test_comm_time_reduction_band(self, model):
        """The headline: 77 % communication-time reduction."""
        ref = model.step_times(lj_strong(), 36864, variant_by_name("ref"))
        opt = model.step_times(lj_strong(), 36864, variant_by_name("opt"))
        reduction = 1 - opt.stages["Comm"] / ref.stages["Comm"]
        assert 0.65 <= reduction <= 0.88

    def test_origin_eam_pair_heaviest(self, model):
        res = model.step_times(eam_strong(), 36864, variant_by_name("ref"))
        assert res.stages["Pair"] == max(res.stages.values())  # paper: 43.44 %

    def test_opt_eam_other_exceeds_comm(self, model):
        """Paper: 'the Other stage takes over 31.84 %, greater than the
        time taken for communication' (the unoptimized allreduce)."""
        res = model.step_times(eam_strong(), 36864, variant_by_name("opt"))
        assert res.stages["Other"] > res.stages["Comm"]
        assert res.percent("Other") >= 25

    def test_eam_allreduce_grows_with_scale(self, model):
        w = eam_strong()
        o_small = model.step_times(w, 768, variant_by_name("opt")).stages["Other"]
        o_big = model.step_times(w, 36864, variant_by_name("opt")).stages["Other"]
        assert o_big > o_small


class TestFig12StepByStep:
    """Speedup-over-ref bands for the 768-node step-by-step experiment."""

    def speedups(self, model, workload):
        base = model.step_times(workload, 768, variant_by_name("ref")).total
        return {
            name: base / model.step_times(workload, 768, variant_by_name(name)).total
            for name in ("mpi_p2p", "utofu_3stage", "4tni_p2p", "6tni_p2p", "opt")
        }

    def test_lj_65k_orderings(self, model):
        s = self.speedups(model, LJ_WORKLOAD_65K)
        assert s["mpi_p2p"] < 1.0  # naive MPI p2p is a regression
        assert s["utofu_3stage"] > 1.3
        assert s["6tni_p2p"] < s["4tni_p2p"]  # 'abnormally poor' 6TNI
        assert s["opt"] == max(s.values())
        assert 2.2 <= s["opt"] <= 4.2  # paper: 3.01x

    def test_eam_65k_opt_band(self, model):
        s = self.speedups(model, EAM_WORKLOAD_65K)
        assert 1.8 <= s["opt"] <= 4.0  # paper: 2.45x

    def test_1m7_improvement_smaller_than_65k(self, model):
        """Paper: at 1.7M particles the pair stage dominates, so the
        optimization gains shrink (1.6x / 1.4x vs 3.01x / 2.45x)."""
        s_small = self.speedups(model, LJ_WORKLOAD_65K)["opt"]
        s_big = self.speedups(model, LJ_WORKLOAD_1M7)["opt"]
        assert s_big < s_small
        assert 1.2 <= s_big <= 2.6  # paper: 1.6x
        e_small = self.speedups(model, EAM_WORKLOAD_65K)["opt"]
        e_big = self.speedups(model, EAM_WORKLOAD_1M7)["opt"]
        assert e_big < e_small
        assert 1.1 <= e_big <= 2.0  # paper: 1.4x

    def test_p2p_patterns_beat_3stage_at_1m7_comm(self, model):
        """Paper section 4.2: at 1.7M every p2p variant has lower comm
        time than the 3-stage pattern."""
        w = LJ_WORKLOAD_1M7
        c3 = model.step_times(w, 768, variant_by_name("utofu_3stage")).stages["Comm"]
        for name in ("4tni_p2p", "6tni_p2p", "opt"):
            cp = model.step_times(w, 768, variant_by_name(name)).stages["Comm"]
            assert cp < c3
