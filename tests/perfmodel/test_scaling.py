"""Strong/weak scaling sweeps: Fig. 13 and Fig. 14 shape bands."""

import pytest

from repro.perfmodel import (
    StageModel,
    strong_scaling,
    weak_scaling,
    parallel_efficiency,
    performance_per_day,
)
from repro.perfmodel.scaling import (
    STRONG_EAM_ATOMS,
    STRONG_LJ_ATOMS,
    STRONG_SCALING_NODES,
    WEAK_SCALING_NODES,
    WEAK_LJ_ATOMS_PER_CORE,
    weak_scaling_rate,
)
from repro.perfmodel.stagemodel import Workload


def lj_strong():
    return Workload("lj", "lj", STRONG_LJ_ATOMS, 0.8442, 2.8, 0.005, rebuild_every=20)


def eam_strong():
    return Workload(
        "eam", "eam", STRONG_EAM_ATOMS, 0.0847, 5.95, 0.005,
        rebuild_every=20, allreduce_every=5,
    )


class TestStrongScaling:
    def test_node_sweep_matches_paper(self):
        assert STRONG_SCALING_NODES == (768, 2160, 6144, 18432, 36864)

    def test_step_time_decreases_with_nodes(self):
        for v in ("ref", "opt"):
            pts = strong_scaling(lj_strong(), v)
            times = [p.step_time for p in pts]
            assert all(a >= b for a, b in zip(times, times[1:]))

    def test_lj_headline_speedup(self):
        """Paper: 2.9x at 36 864 nodes."""
        ref = strong_scaling(lj_strong(), "ref")[-1].step_time
        opt = strong_scaling(lj_strong(), "opt")[-1].step_time
        assert 2.2 <= ref / opt <= 3.8

    def test_eam_headline_speedup(self):
        """Paper: 2.2x at 36 864 nodes."""
        ref = strong_scaling(eam_strong(), "ref")[-1].step_time
        opt = strong_scaling(eam_strong(), "opt")[-1].step_time
        assert 1.7 <= ref / opt <= 3.2

    def test_speedup_grows_with_scale(self):
        """The optimization matters more the fewer atoms per rank."""
        ref = strong_scaling(lj_strong(), "ref")
        opt = strong_scaling(lj_strong(), "opt")
        gains = [r.step_time / o.step_time for r, o in zip(ref, opt)]
        assert gains[-1] > gains[0]

    def test_parallel_efficiency_decays(self):
        pts = strong_scaling(lj_strong(), "opt")
        eff = parallel_efficiency(pts)
        assert eff[0] == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(eff, eff[1:]))
        assert eff[-1] < 0.3  # 48x more nodes cannot stay efficient

    def test_opt_efficiency_beats_ref(self):
        """Fig. 13a: the optimized curve holds efficiency better."""
        e_ref = parallel_efficiency(strong_scaling(lj_strong(), "ref"))
        e_opt = parallel_efficiency(strong_scaling(lj_strong(), "opt"))
        assert e_opt[-1] > e_ref[-1]

    def test_performance_per_day_order_of_magnitude(self):
        """Paper: 8.77 Mtau/day (LJ) and 2.87 us/day (EAM) at the last
        point — we assert the order of magnitude."""
        lj_pt = strong_scaling(lj_strong(), "opt")[-1]
        tau_day = performance_per_day(lj_pt, dt=0.005)
        assert 3e6 < tau_day < 40e6
        eam_pt = strong_scaling(eam_strong(), "opt")[-1]
        ps_day = performance_per_day(eam_pt, dt=0.005)
        assert 1e6 < ps_day < 15e6  # 1-15 us/day in ps


class TestWeakScaling:
    def test_node_sweep_matches_paper(self):
        assert WEAK_SCALING_NODES == (768, 2160, 6144, 20736)

    def test_near_linear_rate(self):
        """Fig. 14: atom-steps/second grows almost linearly with nodes."""
        pts = weak_scaling(lj_strong(), "opt", WEAK_LJ_ATOMS_PER_CORE)
        rates = weak_scaling_rate(pts)
        for p0, pn, r0, rn in zip(pts, pts[1:], rates, rates[1:]):
            ideal = pn.nodes / p0.nodes
            assert rn / r0 > 0.85 * ideal

    def test_paper_final_atom_counts(self):
        """99 billion (LJ) atoms at 20 736 nodes."""
        pts = weak_scaling(lj_strong(), "opt", WEAK_LJ_ATOMS_PER_CORE)
        assert pts[-1].natoms == pytest.approx(99.5e9, rel=0.01)

    def test_step_time_nearly_flat(self):
        pts = weak_scaling(lj_strong(), "opt", WEAK_LJ_ATOMS_PER_CORE)
        t = [p.step_time for p in pts]
        assert max(t) / min(t) < 1.2
