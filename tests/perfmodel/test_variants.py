"""Variant spec tests."""

import pytest

from repro.network import MpiStack, UtofuStack
from repro.perfmodel import VARIANTS, variant_by_name


class TestVariantTable:
    def test_artifact_variants_present(self):
        """The five projects of the paper's artifact appendix."""
        for name in ("ref", "utofu_3stage", "4tni_p2p", "6tni_p2p", "opt"):
            assert name in VARIANTS

    def test_ref_is_mpi_3stage_openmp(self):
        v = variant_by_name("ref")
        assert isinstance(v.stack(), MpiStack)
        assert v.pattern == "3stage"
        assert not v.threadpool_compute
        assert v.comm_threads == 1

    def test_opt_is_the_full_stack(self):
        v = variant_by_name("opt")
        assert isinstance(v.stack(), UtofuStack)
        assert v.pattern == "p2p"
        assert v.comm_threads == 6
        assert v.tnis_used == 6
        assert v.threadpool_compute
        assert v.rdma_preregistered
        assert v.message_combine
        assert v.border_bins

    def test_6tni_single_thread(self):
        v = variant_by_name("6tni_p2p")
        assert v.comm_threads == 1
        assert v.tnis_used == 6

    def test_is_parallel_comm(self):
        assert variant_by_name("opt").is_parallel_comm
        assert not variant_by_name("4tni_p2p").is_parallel_comm

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            variant_by_name("gpu")
