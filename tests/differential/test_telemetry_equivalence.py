"""Telemetry on vs off: bit-identical ghosts and forces, fast path kept.

The always-on telemetry plane must be a pure observer.  This drives the
``equivalence-telemetry`` slice of the generated scenario fleet
(``repro.scenarios``) with telemetry enabled against a
telemetry-disabled control and requires **bit-identical** ghost regions
and forces — the same equivalence bar the exchange variants themselves
are held to — plus an untouched fast path (no observability gate
refusals) while the plane is collecting.

The fleet slice embeds the legacy hand-written 24-config grid (proven
in ``test_exchange_equivalence.TestLegacyCoverage``); under
``REPRO_FLEET=sampled`` a deterministic 12-config sample runs instead.
"""

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig
from repro.core import FineGrainedP2PExchange
from repro.obs.telemetry import TELEMETRY
from repro.scenarios import differential_scenarios, scenario_ids
from repro.scenarios.build import build_world, random_system

from tests.differential.test_exchange_equivalence import unpack

SCENARIOS = differential_scenarios("telemetry")


class TestGhostBitIdentity:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=scenario_ids(SCENARIOS))
    def test_ghosts_identical_with_telemetry(self, scenario):
        grid, rcomm, _, newton, seed, atoms, box_edge = unpack(scenario)
        x, v, _ = random_system(atoms, seed, box_edge)

        with TELEMETRY.scope():
            w_on, d_on = build_world(grid, x, v, box_edge)
            ex_on = FineGrainedP2PExchange(w_on, d_on, rcomm=rcomm, newton=newton)
            ex_on.borders()
        with TELEMETRY.disabled():
            w_off, d_off = build_world(grid, x, v, box_edge)
            ex_off = FineGrainedP2PExchange(w_off, d_off, rcomm=rcomm, newton=newton)
            ex_off.borders()

        assert ex_on._gate_blocks["observability"] == 0
        for rank in range(w_on.size):
            a_on, a_off = ex_on.atoms_of(rank), ex_off.atoms_of(rank)
            assert np.array_equal(a_on.x, a_off.x)
            assert np.array_equal(a_on.tag, a_off.tag)


class TestForceBitIdentity:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=scenario_ids(SCENARIOS))
    def test_forces_identical_with_telemetry(self, scenario):
        grid, _, cutoff, newton, seed, atoms, box_edge = unpack(scenario)
        p = scenario["params"]
        x, v, box = random_system(atoms, seed, box_edge)
        cfg = SimulationConfig(
            dt=p["dt"], skin=p["skin"], pattern="parallel-p2p", rdma=p["rdma"],
            neighbor_every=p["neighbor_every"], newton=newton,
        )

        with TELEMETRY.scope():
            on = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
            on.run(2)
        with TELEMETRY.disabled():
            off = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
            off.run(2)

        assert on.telemetry is not None and off.telemetry is None
        # Collecting telemetry must not push any phase off the fast path.
        assert on.exchange._gate_blocks["observability"] == 0
        assert np.array_equal(on.gather_forces(), off.gather_forces())
        assert np.array_equal(on.gather_positions(), off.gather_positions())
