"""Telemetry on vs off: bit-identical ghosts and forces, fast path kept.

The always-on telemetry plane must be a pure observer.  This re-drives
the 24-configuration differential grid from
``test_exchange_equivalence`` with telemetry enabled against a
telemetry-disabled control and requires **bit-identical** ghost regions
and forces — the same equivalence bar the exchange variants themselves
are held to — plus an untouched fast path (no observability gate
refusals) while the plane is collecting.
"""

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig
from repro.core import FineGrainedP2PExchange
from repro.obs.telemetry import TELEMETRY

from tests.differential.test_exchange_equivalence import (
    CONFIGS,
    GRIDS,
    SKIN,
    build_world,
    config_seed,
    random_system,
)


class TestGhostBitIdentity:
    @pytest.mark.parametrize("grid_idx,cutoff,newton", CONFIGS)
    def test_ghosts_identical_with_telemetry(self, grid_idx, cutoff, newton):
        grid = GRIDS[grid_idx]
        rcomm = cutoff + SKIN
        seed = config_seed(grid_idx, cutoff, newton)
        x, v, _ = random_system(150, seed)

        with TELEMETRY.scope():
            w_on, d_on = build_world(grid, x, v)
            ex_on = FineGrainedP2PExchange(w_on, d_on, rcomm=rcomm, newton=newton)
            ex_on.borders()
        with TELEMETRY.disabled():
            w_off, d_off = build_world(grid, x, v)
            ex_off = FineGrainedP2PExchange(w_off, d_off, rcomm=rcomm, newton=newton)
            ex_off.borders()

        assert ex_on._gate_blocks["observability"] == 0
        for rank in range(w_on.size):
            a_on, a_off = ex_on.atoms_of(rank), ex_off.atoms_of(rank)
            assert np.array_equal(a_on.x, a_off.x)
            assert np.array_equal(a_on.tag, a_off.tag)


class TestForceBitIdentity:
    @pytest.mark.parametrize("grid_idx,cutoff,newton", CONFIGS)
    def test_forces_identical_with_telemetry(self, grid_idx, cutoff, newton):
        grid = GRIDS[grid_idx]
        seed = config_seed(grid_idx, cutoff, newton)
        x, v, box = random_system(150, seed)
        cfg = SimulationConfig(
            dt=0.002, skin=SKIN, pattern="parallel-p2p", rdma=False,
            neighbor_every=3, newton=newton,
        )

        with TELEMETRY.scope():
            on = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
            on.run(2)
        with TELEMETRY.disabled():
            off = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
            off.run(2)

        assert on.telemetry is not None and off.telemetry is None
        # Collecting telemetry must not push any phase off the fast path.
        assert on.exchange._gate_blocks["observability"] == 0
        assert np.array_equal(on.gather_forces(), off.gather_forces())
        assert np.array_equal(on.gather_positions(), off.gather_positions())
