"""Plan-cache correctness: caching may never change what is exchanged.

The persistent :class:`~repro.core.comm_plan.RankPlan` freezes the
border-stage routes into flat gather/scatter arrays and replays them
until reneighboring invalidates the cache.  These tests prove the three
ways that could go wrong do not:

* a *stale* plan surviving migration/reneighboring (epoch invalidation),
* a *cached* replay differing from a freshly rebuilt one (paranoid
  per-step invalidation must be bit-identical),
* the *fast* path (plans + pooled buffers) differing from the traced
  slow path (per-route Python loops, the seed semantics).
"""

import numpy as np

from repro import LennardJones, Simulation, SimulationConfig
from repro.core import P2PExchange
from repro.md import Box, Domain
from repro.md.atoms import Atoms
from repro.obs.trace import tracing
from repro.runtime import World

BOX_EDGE = 9.0  # matches test_exchange_equivalence: sub-box 4.5 >= rcomm


def random_system(n_atoms: int, seed: int):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, BOX_EDGE, size=(n_atoms, 3))
    v = rng.normal(0.0, 0.3, size=(n_atoms, 3))
    v -= v.mean(axis=0)
    return x, v, Box((0, 0, 0), (BOX_EDGE,) * 3)


def build_world(grid):
    world = World(int(np.prod(grid)), grid=grid)
    box = Box((0, 0, 0), (BOX_EDGE,) * 3)
    domain = Domain(box, grid)
    for rank in range(world.size):
        world.ranks[rank].state["atoms"] = Atoms()
    return world, domain


def _lj_sim(seed=7, pattern="p2p", steps=0, **overrides):
    x, v, box = random_system(150, seed)
    cfg = SimulationConfig(
        dt=0.002, skin=0.3, pattern=pattern, rdma=False,
        neighbor_every=3, newton=True, **overrides,
    )
    sim = Simulation(x, v, box, LennardJones(cutoff=1.55), cfg, grid=(2, 2, 2))
    if steps:
        sim.run(steps)
    return sim


class TestPlanInvalidation:
    def test_cached_run_matches_paranoid_invalidation(self):
        """Rebuilding every plan before every step changes nothing.

        Ten steps crossing three reneighborings: the run that trusts the
        epoch cache must produce bit-identical positions, velocities and
        forces to the run that throws every plan away each step.
        """
        cached = _lj_sim(seed=11)
        paranoid = _lj_sim(seed=11)
        cached.setup()
        paranoid.setup()
        for _ in range(10):
            paranoid.exchange._invalidate_plans()
            paranoid.step()
            cached.step()
        assert np.array_equal(cached.gather_positions(), paranoid.gather_positions())
        assert np.array_equal(cached.gather_velocities(), paranoid.gather_velocities())
        assert np.array_equal(cached.gather_forces(), paranoid.gather_forces())

    def test_migration_and_borders_bump_epoch(self):
        """exchange() and borders() both invalidate; forward() reuses."""
        sim = _lj_sim(seed=12)
        sim.setup()
        ex = sim.exchange
        epoch = ex._plan_epoch
        ex.forward()
        assert ex._plan_epoch == epoch  # replay does not invalidate
        ex.exchange()
        assert ex._plan_epoch > epoch  # migration does
        epoch = ex._plan_epoch
        ex.borders()
        assert ex._plan_epoch > epoch  # reneighboring does

    def test_plan_builds_track_reneighborings(self):
        """One plan build per borders epoch, not per phase."""
        sim = _lj_sim(seed=13)
        sim.run(10)  # neighbor_every=3 -> setup + 3 rebuilds
        stats = sim.exchange.plan_stats()
        assert stats["plan_builds"] == 1 + sim.rebuilds
        assert stats["fastpath_phases"] > 0
        assert stats["pool_grow_events"] == 0

    def test_stale_plan_never_survives_reneighbor(self):
        """Ghosts after a mid-run reneighbor match a from-scratch build.

        If a stale gather plan survived, the replayed ghost region would
        come from pre-migration atom rows and drift from an exchange
        that never cached anything.
        """
        # Step 6 reneighbors and positions only drift on the *next*
        # step, so border-time routes and current atoms still agree —
        # the precondition for comparing against a from-scratch build.
        sim = _lj_sim(seed=14, steps=6)
        x_state = {
            r: sim.atoms_of(r).x[: sim.atoms_of(r).nlocal].copy()
            for r in range(sim.world.size)
        }
        sim.exchange.forward()
        # A fresh exchange over a copy of the same owned atoms: borders
        # from scratch, no history to be stale about.
        world, domain = build_world((2, 2, 2))
        for r in range(world.size):
            src = sim.atoms_of(r)
            dst = world.ranks[r].state["atoms"]
            n = src.nlocal
            dst.set_local(x_state[r], src.v[:n].copy(), src.tag[:n].copy())
        fresh = P2PExchange(world, domain, rcomm=sim.exchange.rcomm, newton=True)
        fresh.borders()
        for r in range(world.size):
            a, b = sim.atoms_of(r), fresh.atoms_of(r)
            ghosts_a = {
                (int(t), p.tobytes())
                for t, p in zip(a.tag[a.nlocal :], a.x[a.nlocal :])
            }
            ghosts_b = {
                (int(t), p.tobytes())
                for t, p in zip(b.tag[b.nlocal :], b.x[b.nlocal :])
            }
            assert ghosts_a == ghosts_b


class TestFastSlowEquivalence:
    def test_traced_slow_path_is_bit_identical(self):
        """TRACER on (slow per-route path) == TRACER off (fast path)."""
        fast = _lj_sim(seed=15)
        slow = _lj_sim(seed=15)
        fast.run(6)
        with tracing():
            slow.run(6)
        assert np.array_equal(fast.gather_positions(), slow.gather_positions())
        assert np.array_equal(fast.gather_forces(), slow.gather_forces())

    def test_scalar_phases_share_the_plan(self):
        """EAM's per-atom scalar forward/reverse ride the same plan."""
        from repro.md.presets import PRESETS

        fast = PRESETS["eam"].simulation(
            (4, 4, 4), (2, 2, 2), pattern="p2p", rdma=False, thermo_every=0
        )
        slow = PRESETS["eam"].simulation(
            (4, 4, 4), (2, 2, 2), pattern="p2p", rdma=False, thermo_every=0
        )
        fast.run(4)
        with tracing():
            slow.run(4)
        assert np.array_equal(fast.gather_positions(), slow.gather_positions())
        assert np.array_equal(fast.gather_forces(), slow.gather_forces())

    def test_box_edge_guard(self):
        """The shared fixtures still decompose as the suite assumes."""
        assert BOX_EDGE / 2 >= 1.55 + 0.3
