"""Differential equivalence of the three exchange variants.

Registry-driven: the configurations come from the generated scenario
fleet (``repro.scenarios``, block ``equivalence-off`` of the committed
``fleet-core`` spec) instead of a hand-written list.  The fleet embeds
the legacy 24-config grid — 4 rank grids x 3 cutoffs x 2 Newton modes
with the same seeds, box, and atom count — and
:class:`TestLegacyCoverage` proves it, so this refactor cannot silently
shrink coverage.

The invariants are unchanged: the fine-grained parallel-p2p exchange
must be **bit-identical** to the coarse p2p exchange (same ghost arrays
in the same order), the 3-stage full shell must contain every p2p
half-shell ghost (and exactly equal it with Newton off), and one
integration step under each pattern must produce the same forces.

This is the reference suite the fault-injection selfcheck leans on: if
the variants ever drift apart fault-free, a "faults absorbed, ghosts
identical" claim would be vacuous.
"""

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig
from repro.core import FineGrainedP2PExchange, P2PExchange, ThreeStageExchange
from repro.scenarios import (
    differential_scenarios,
    legacy_equivalence_configs,
    scenario_ids,
)
from repro.scenarios.build import build_world, ghost_set, random_system

SCENARIOS = differential_scenarios("off")


def unpack(scenario):
    """(grid, rcomm, cutoff, newton, seed, atoms, box_edge) of one scenario."""
    p = scenario["params"]
    return (
        tuple(p["grid"]),
        float(p["cutoff"]) + float(p["skin"]),
        float(p["cutoff"]),
        bool(p["newton"]),
        int(scenario["seed"]),
        int(p["atoms"]),
        float(p["box_edge"]),
    )


class TestLegacyCoverage:
    def test_legacy_24_configs_are_a_subset_of_the_fleet(self):
        """The deleted hand-written list is provably embedded.

        Every legacy (grid, cutoff, newton) triple must appear in the
        registry slice this suite parametrizes over, with the legacy
        seed formula, box edge, atom count, and skin — i.e. the exact
        same randomized systems the old suite built.
        """
        legacy = legacy_equivalence_configs()
        assert len(legacy) == 24
        grids = [k[0] for k in legacy[::6]]
        by_key = {
            (tuple(s["params"]["grid"]), s["params"]["cutoff"],
             s["params"]["newton"]): s
            for s in SCENARIOS
        }
        for grid, cutoff, newton in legacy:
            s = by_key[(grid, cutoff, newton)]
            assert s["seed"] == (
                1000 * grids.index(grid) + int(100 * cutoff) + (1 if newton else 0)
            )
            assert s["params"]["box_edge"] == 9.0
            assert s["params"]["atoms"] == 150
            assert s["params"]["skin"] == 0.3

    def test_fleet_slice_is_at_least_the_legacy_grid(self):
        assert len(SCENARIOS) >= 24


class TestGhostEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=scenario_ids(SCENARIOS))
    def test_ghost_regions_agree(self, scenario):
        grid, rcomm, _, newton, seed, atoms, box_edge = unpack(scenario)
        x, v, _ = random_system(atoms, seed, box_edge)

        wp, dp = build_world(grid, x, v, box_edge)
        wf, df = build_world(grid, x, v, box_edge)
        wt, dt = build_world(grid, x, v, box_edge)
        p2p = P2PExchange(wp, dp, rcomm=rcomm, newton=newton)
        fine = FineGrainedP2PExchange(wf, df, rcomm=rcomm, newton=newton)
        three = ThreeStageExchange(wt, dt, rcomm=rcomm)
        for ex in (p2p, fine, three):
            ex.borders()

        for rank in range(wp.size):
            ap, af = p2p.atoms_of(rank), fine.atoms_of(rank)
            # Fine-grained splits messages across threads but must land
            # the exact same ghost arrays in the exact same order.
            assert np.array_equal(ap.x, af.x)
            assert np.array_equal(ap.tag, af.tag)
            sp, st = ghost_set(p2p, rank), ghost_set(three, rank)
            assert sp <= st, f"rank {rank}: p2p ghost missing from 3-stage shell"
            if not newton:
                # Full shell everywhere: identical ghost sets.
                assert sp == st


class TestForceEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=scenario_ids(SCENARIOS))
    def test_forces_after_one_step(self, scenario):
        grid, _, cutoff, newton, seed, atoms, box_edge = unpack(scenario)
        p = scenario["params"]
        x, v, box = random_system(atoms, seed, box_edge)
        forces = {}
        for pattern in p["patterns"]:
            # Message plane for all three: the RDMA plane is proven
            # equivalent to it separately (tests/core/test_exchanges.py)
            # and its pre-sized buffers reject these irregular systems.
            cfg = SimulationConfig(
                dt=p["dt"], skin=p["skin"], pattern=pattern, rdma=p["rdma"],
                neighbor_every=p["neighbor_every"], newton=newton,
            )
            sim = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
            sim.run(1)
            forces[pattern] = sim.gather_forces()
        # Fine vs coarse p2p run the identical float schedule.
        assert np.array_equal(forces["parallel-p2p"], forces["p2p"])
        # 3-stage sums in a different (but valid) order.
        atol = scenario["tolerances"].get("force_atol", 1e-10)
        assert np.allclose(forces["3stage"], forces["p2p"], atol=atol)
