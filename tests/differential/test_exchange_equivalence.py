"""Differential equivalence of the three exchange variants.

Randomized domains and cutoffs, both Newton modes, >= 20 configurations:
the fine-grained parallel-p2p exchange must be **bit-identical** to the
coarse p2p exchange (same ghost arrays in the same order), the 3-stage
full shell must contain every p2p half-shell ghost (and exactly equal it
with Newton off), and one integration step under each pattern must
produce the same forces.

This is the reference suite the fault-injection selfcheck leans on: if
the variants ever drift apart fault-free, a "faults absorbed, ghosts
identical" claim would be vacuous.
"""

import itertools

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig
from repro.core import FineGrainedP2PExchange, P2PExchange, ThreeStageExchange
from repro.md import Box, Domain
from repro.md.atoms import Atoms
from repro.runtime import World

GRIDS = [(1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)]
CUTOFFS = [1.3, 1.55, 1.8]
SKIN = 0.3
BOX_EDGE = 9.0  # min sub-box edge 4.5 >= max rcomm 2.1

#: grid x cutoff x newton = 24 configurations (>= 20 required).
CONFIGS = list(itertools.product(range(len(GRIDS)), CUTOFFS, (True, False)))


def random_system(n_atoms: int, seed: int):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.0, BOX_EDGE, size=(n_atoms, 3))
    # Push overlapping pairs apart so LJ forces stay finite but keep the
    # distribution irregular (uneven per-rank borders).
    v = rng.normal(0.0, 0.3, size=(n_atoms, 3))
    v -= v.mean(axis=0)
    return x, v, Box((0, 0, 0), (BOX_EDGE,) * 3)


def build_world(grid, x, v):
    world = World(int(np.prod(grid)), grid=grid)
    box = Box((0, 0, 0), (BOX_EDGE,) * 3)
    domain = Domain(box, grid)
    tags = np.arange(x.shape[0], dtype=np.int64)
    groups = domain.scatter(x)
    for rank in range(world.size):
        idx = groups.get(world.grid_pos_of(rank), np.empty(0, dtype=np.intp))
        atoms = Atoms()
        atoms.set_local(x[idx], v[idx], tags[idx])
        world.ranks[rank].state["atoms"] = atoms
    return world, domain


def ghost_set(exchange, rank):
    """The ghost region as a set of (tag, exact position) pairs."""
    atoms = exchange.atoms_of(rank)
    return {
        (int(tag), pos.tobytes())
        for tag, pos in zip(atoms.tag[atoms.nlocal :], atoms.x[atoms.nlocal :])
    }


def config_seed(grid_idx, cutoff, newton) -> int:
    return 1000 * grid_idx + int(100 * cutoff) + (1 if newton else 0)


class TestGhostEquivalence:
    @pytest.mark.parametrize("grid_idx,cutoff,newton", CONFIGS)
    def test_ghost_regions_agree(self, grid_idx, cutoff, newton):
        grid = GRIDS[grid_idx]
        rcomm = cutoff + SKIN
        seed = config_seed(grid_idx, cutoff, newton)
        x, v, _ = random_system(150, seed)

        wp, dp = build_world(grid, x, v)
        wf, df = build_world(grid, x, v)
        wt, dt = build_world(grid, x, v)
        p2p = P2PExchange(wp, dp, rcomm=rcomm, newton=newton)
        fine = FineGrainedP2PExchange(wf, df, rcomm=rcomm, newton=newton)
        three = ThreeStageExchange(wt, dt, rcomm=rcomm)
        for ex in (p2p, fine, three):
            ex.borders()

        for rank in range(wp.size):
            ap, af = p2p.atoms_of(rank), fine.atoms_of(rank)
            # Fine-grained splits messages across threads but must land
            # the exact same ghost arrays in the exact same order.
            assert np.array_equal(ap.x, af.x)
            assert np.array_equal(ap.tag, af.tag)
            sp, st = ghost_set(p2p, rank), ghost_set(three, rank)
            assert sp <= st, f"rank {rank}: p2p ghost missing from 3-stage shell"
            if not newton:
                # Full shell everywhere: identical ghost sets.
                assert sp == st


class TestForceEquivalence:
    @pytest.mark.parametrize("grid_idx,cutoff,newton", CONFIGS)
    def test_forces_after_one_step(self, grid_idx, cutoff, newton):
        grid = GRIDS[grid_idx]
        seed = config_seed(grid_idx, cutoff, newton)
        x, v, box = random_system(150, seed)
        forces = {}
        for pattern in ("parallel-p2p", "p2p", "3stage"):
            # Message plane for all three: the RDMA plane is proven
            # equivalent to it separately (tests/core/test_exchanges.py)
            # and its pre-sized buffers reject these irregular systems.
            cfg = SimulationConfig(
                dt=0.002, skin=SKIN, pattern=pattern, rdma=False,
                neighbor_every=3, newton=newton,
            )
            sim = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
            sim.run(1)
            forces[pattern] = sim.gather_forces()
        # Fine vs coarse p2p run the identical float schedule.
        assert np.array_equal(forces["parallel-p2p"], forces["p2p"])
        # 3-stage sums in a different (but valid) order.
        assert np.allclose(forces["3stage"], forces["p2p"], atol=1e-10)
