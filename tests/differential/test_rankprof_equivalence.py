"""Rank profiler on vs off: bit-identical ghosts and forces.

The per-rank profiler is a pure observer: it replays each rank's
message schedule through the *model* under a scoped trace and never
touches the exchange's functional state, plan cache, or fast-path gate.
This drives the ``equivalence-rankprof`` slice of the generated
scenario fleet (``repro.scenarios``) with the profiler interleaved
mid-run against an unprofiled control and requires **bit-identical**
ghost regions, forces, and positions — plus an untouched fast path.

The fleet slice embeds the legacy hand-written 24-config grid (proven
in ``test_exchange_equivalence.TestLegacyCoverage``); under
``REPRO_FLEET=sampled`` a deterministic 12-config sample runs instead.
"""

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig
from repro.core import FineGrainedP2PExchange
from repro.obs.rankprof import profile_exchange
from repro.scenarios import differential_scenarios, scenario_ids
from repro.scenarios.build import build_world, random_system

from tests.differential.test_exchange_equivalence import unpack

SCENARIOS = differential_scenarios("rankprof")


class TestGhostBitIdentity:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=scenario_ids(SCENARIOS))
    def test_ghosts_identical_with_profiler(self, scenario):
        grid, rcomm, _, newton, seed, atoms, box_edge = unpack(scenario)
        x, v, _ = random_system(atoms, seed, box_edge)

        w_on, d_on = build_world(grid, x, v, box_edge)
        ex_on = FineGrainedP2PExchange(w_on, d_on, rcomm=rcomm, newton=newton)
        ex_on.borders()
        prof = profile_exchange(ex_on, phases=("forward",))
        assert len(prof.profiles) == w_on.size
        ex_on.forward()

        w_off, d_off = build_world(grid, x, v, box_edge)
        ex_off = FineGrainedP2PExchange(w_off, d_off, rcomm=rcomm, newton=newton)
        ex_off.borders()
        ex_off.forward()

        # Profiling must not count as an observability fast-path refusal.
        assert ex_on._gate_blocks["observability"] == 0
        for rank in range(w_on.size):
            a_on, a_off = ex_on.atoms_of(rank), ex_off.atoms_of(rank)
            assert np.array_equal(a_on.x, a_off.x)
            assert np.array_equal(a_on.tag, a_off.tag)


class TestForceBitIdentity:
    @pytest.mark.parametrize("scenario", SCENARIOS, ids=scenario_ids(SCENARIOS))
    def test_forces_identical_with_profiler(self, scenario):
        grid, _, cutoff, newton, seed, atoms, box_edge = unpack(scenario)
        p = scenario["params"]
        x, v, box = random_system(atoms, seed, box_edge)
        cfg = SimulationConfig(
            dt=p["dt"], skin=p["skin"], pattern="parallel-p2p", rdma=p["rdma"],
            neighbor_every=p["neighbor_every"], newton=newton,
        )

        on = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
        on.run(1)
        profile_exchange(on.exchange, phases=("forward",))  # mid-run probe
        on.run(1)

        off = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
        off.run(2)

        assert on.exchange._gate_blocks["observability"] == 0
        assert np.array_equal(on.gather_forces(), off.gather_forces())
        assert np.array_equal(on.gather_positions(), off.gather_positions())
