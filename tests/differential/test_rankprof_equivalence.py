"""Rank profiler on vs off: bit-identical ghosts and forces.

The per-rank profiler is a pure observer: it replays each rank's
message schedule through the *model* under a scoped trace and never
touches the exchange's functional state, plan cache, or fast-path gate.
This re-drives the 24-configuration differential grid from
``test_exchange_equivalence`` with the profiler interleaved mid-run
against an unprofiled control and requires **bit-identical** ghost
regions, forces, and positions — plus an untouched fast path.
"""

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig
from repro.core import FineGrainedP2PExchange
from repro.obs.rankprof import profile_exchange

from tests.differential.test_exchange_equivalence import (
    CONFIGS,
    GRIDS,
    SKIN,
    build_world,
    config_seed,
    random_system,
)


class TestGhostBitIdentity:
    @pytest.mark.parametrize("grid_idx,cutoff,newton", CONFIGS)
    def test_ghosts_identical_with_profiler(self, grid_idx, cutoff, newton):
        grid = GRIDS[grid_idx]
        rcomm = cutoff + SKIN
        seed = config_seed(grid_idx, cutoff, newton)
        x, v, _ = random_system(150, seed)

        w_on, d_on = build_world(grid, x, v)
        ex_on = FineGrainedP2PExchange(w_on, d_on, rcomm=rcomm, newton=newton)
        ex_on.borders()
        prof = profile_exchange(ex_on, phases=("forward",))
        assert len(prof.profiles) == w_on.size
        ex_on.forward()

        w_off, d_off = build_world(grid, x, v)
        ex_off = FineGrainedP2PExchange(w_off, d_off, rcomm=rcomm, newton=newton)
        ex_off.borders()
        ex_off.forward()

        # Profiling must not count as an observability fast-path refusal.
        assert ex_on._gate_blocks["observability"] == 0
        for rank in range(w_on.size):
            a_on, a_off = ex_on.atoms_of(rank), ex_off.atoms_of(rank)
            assert np.array_equal(a_on.x, a_off.x)
            assert np.array_equal(a_on.tag, a_off.tag)


class TestForceBitIdentity:
    @pytest.mark.parametrize("grid_idx,cutoff,newton", CONFIGS)
    def test_forces_identical_with_profiler(self, grid_idx, cutoff, newton):
        grid = GRIDS[grid_idx]
        seed = config_seed(grid_idx, cutoff, newton)
        x, v, box = random_system(150, seed)
        cfg = SimulationConfig(
            dt=0.002, skin=SKIN, pattern="parallel-p2p", rdma=False,
            neighbor_every=3, newton=newton,
        )

        on = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
        on.run(1)
        profile_exchange(on.exchange, phases=("forward",))  # mid-run probe
        on.run(1)

        off = Simulation(x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid)
        off.run(2)

        assert on.exchange._gate_blocks["observability"] == 0
        assert np.array_equal(on.gather_forces(), off.gather_forces())
        assert np.array_equal(on.gather_positions(), off.gather_positions())
