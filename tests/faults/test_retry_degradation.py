"""Retry absorption and the degradation ladder, driven through Simulation."""

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig
from repro.faults import (
    FAULTS,
    FaultPlan,
    FaultSpec,
    RetryExhaustedError,
    RetryPolicy,
)
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities

CELLS = (4, 2, 2)
GRID = (2, 1, 1)
STEPS = 4


def build_sim(pattern="parallel-p2p", rdma=False):
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice(CELLS, edge)
    v = maxwell_velocities(len(x), 1.44, seed=11)
    cfg = SimulationConfig(
        dt=0.005, skin=0.3, pattern=pattern, rdma=rdma, neighbor_every=4
    )
    return Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=GRID)


def baseline_positions():
    sim = build_sim()
    sim.run(STEPS)
    return sim.gather_positions()


class TestAbsorption:
    def test_absorbable_drops_leave_run_bit_identical(self):
        plan = FaultPlan(
            seed=5,
            policy=RetryPolicy(max_retries=6),
            faults=(FaultSpec("drop", phases=("border",), severity=2, count=4),),
        )
        clean = baseline_positions()
        sim = build_sim()
        with FAULTS.inject(plan) as session:
            sim.run(STEPS)
        assert session.stats.injected["drop"] == 4
        assert session.stats.unabsorbed == 0
        assert sim.degradations == []
        assert np.array_equal(sim.gather_positions(), clean)

    def test_retries_accounted_on_exchange(self):
        plan = FaultPlan(
            seed=5,
            faults=(FaultSpec("drop", phases=("border",), severity=2, count=2),),
        )
        sim = build_sim()
        with FAULTS.inject(plan) as session:
            sim.run(STEPS)
        assert session.stats.retries > 0
        assert sim.exchange.retries >= session.stats.retries
        assert sim.exchange.retry_model_time > 0.0

    def test_rdma_fence_absorbs_stale_puts(self):
        plan = FaultPlan(
            seed=9,
            faults=(FaultSpec("rdma-stale", severity=2, count=2),),
        )
        clean = baseline_positions()
        sim = build_sim(rdma=True)
        with FAULTS.inject(plan) as session:
            sim.run(STEPS)
        assert session.stats.injected["rdma-stale"] == 2
        assert session.stats.unabsorbed == 0
        assert np.array_equal(sim.gather_positions(), clean)


class TestDegradationLadder:
    def plan_one_lethal_drop(self):
        # Held longer than the retry horizon, but only once: the fine
        # tier must escalate, the p2p tier then runs fault-free.
        return FaultPlan(
            seed=1,
            policy=RetryPolicy(max_retries=2),
            faults=(FaultSpec("drop", phases=("border",), severity=99, count=1),),
        )

    def test_single_degradation_fine_to_p2p(self):
        sim = build_sim()
        with FAULTS.inject(self.plan_one_lethal_drop()) as session:
            sim.run(STEPS)
        assert sim.degradations == [("parallel-p2p", "p2p")]
        assert sim.exchange.name == "p2p"
        assert session.stats.degradations == 1
        assert session.stats.degraded_casualties >= 1
        assert session.stats.unabsorbed == 0

    def test_trajectory_preserved_across_degradation(self):
        clean = baseline_positions()
        sim = build_sim()
        with FAULTS.inject(self.plan_one_lethal_drop()):
            sim.run(STEPS)
        dev = np.abs(
            sim.domain.box.minimum_image(sim.gather_positions() - clean)
        ).max()
        assert dev < 1e-9

    def test_terminal_tier_reraises(self):
        # Unlimited lethal drops kill every tier; after 3-stage (the
        # sturdiest pattern) there is nowhere left to fall.
        plan = FaultPlan(
            seed=2,
            policy=RetryPolicy(max_retries=2),
            faults=(FaultSpec("drop", phases=("border",), severity=99),),
        )
        sim = build_sim()
        with FAULTS.inject(plan):
            with pytest.raises(RetryExhaustedError):
                sim.run(STEPS)
        assert sim.degradations == [("parallel-p2p", "p2p"), ("p2p", "3stage")]

    def test_no_session_never_degrades(self):
        sim = build_sim()
        sim.run(STEPS)
        assert sim.degradations == []
