"""FaultPlan / FaultSpec / RetryPolicy: validation, round-trip, absorbability."""

import json

import pytest

from repro.faults import SCHEMA, FaultPlan, FaultSpec, RetryPolicy
from repro.faults.plan import FAULT_KINDS, MESSAGE_KINDS, RDMA_KINDS, TIMING_KINDS


class TestSpecValidation:
    def test_kinds_partition(self):
        assert set(FAULT_KINDS) == set(MESSAGE_KINDS) | set(TIMING_KINDS) | set(RDMA_KINDS)
        assert len(FAULT_KINDS) == len(MESSAGE_KINDS) + len(TIMING_KINDS) + len(RDMA_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("bitflip")

    @pytest.mark.parametrize("p", [-0.1, 1.5])
    def test_probability_bounds(self, p):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("drop", probability=p)

    def test_timing_kind_requires_stall(self):
        with pytest.raises(ValueError, match="positive stall"):
            FaultSpec("tni-stall")
        FaultSpec("tni-stall", stall=1e-6)  # fine

    def test_exempt_phase_rejected(self):
        with pytest.raises(ValueError, match="exempt"):
            FaultSpec("drop", phases=("exchange",))

    @pytest.mark.parametrize(
        "kwargs",
        [{"count": 0}, {"severity": 0}, {"stall": -1.0}, {"credits": 0}],
    )
    def test_bad_numbers_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec("drop", **kwargs)


class TestRoundTrip:
    def plan(self):
        return FaultPlan(
            seed=42,
            policy=RetryPolicy(base_timeout=2e-6, backoff=1.5, max_retries=5),
            faults=(
                FaultSpec("drop", probability=0.5, count=3, phases=("border",), severity=2),
                FaultSpec("tni-stall", tni=1, stall=1e-6, note="engine 1 hiccup"),
                FaultSpec("rdma-stale", src=0, count=1),
            ),
            note="round-trip fixture",
        )

    def test_dict_round_trip(self):
        plan = self.plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_file_round_trip(self, tmp_path):
        plan = self.plan()
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan
        # And the file is schema-tagged, human-readable JSON.
        doc = json.load(open(path))
        assert doc["schema"] == SCHEMA

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="repro-faults/1"):
            FaultPlan.from_dict({"schema": "repro-faults/99"})

    @pytest.mark.parametrize(
        "doc",
        [
            {"schema": SCHEMA, "bogus": 1},
            {"schema": SCHEMA, "policy": {"retires": 3}},
            {"schema": SCHEMA, "faults": [{"kind": "drop", "severty": 2}]},
        ],
    )
    def test_unknown_keys_rejected(self, doc):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict(doc)

    def test_smoke_plan_artifact_loads_and_is_absorbable(self):
        plan = FaultPlan.load("examples/faultplan_smoke.json")
        assert plan.faults
        assert plan.absorbable()


class TestAbsorbable:
    def test_severity_within_retries(self):
        plan = FaultPlan(faults=(FaultSpec("drop", severity=3),),
                         policy=RetryPolicy(max_retries=3))
        assert plan.absorbable()

    def test_severity_beyond_retries(self):
        plan = FaultPlan(faults=(FaultSpec("drop", severity=4),),
                         policy=RetryPolicy(max_retries=3))
        assert not plan.absorbable()

    def test_budget_disables_absorbability(self):
        plan = FaultPlan(policy=RetryPolicy(fault_budget=1))
        assert not plan.absorbable()

    def test_timing_faults_always_absorbable(self):
        # Timing faults cost only modeled seconds; severity is irrelevant.
        plan = FaultPlan(
            faults=(FaultSpec("inject-jitter", stall=1e-6, severity=99),),
            policy=RetryPolicy(max_retries=1),
        )
        assert plan.absorbable()


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_timeout": 0.0},
            {"backoff": 0.5},
            {"max_retries": 0},
            {"fault_budget": 0},
        ],
    )
    def test_bad_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)
