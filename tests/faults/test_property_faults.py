"""Property tests of the two headline fault-layer guarantees.

* Any *absorbable* plan (every non-timing severity within the retry
  horizon, no budget) leaves the final ghost region and trajectory
  bit-identical to the fault-free run.
* Any plan replays: the same seed and schedule produce the identical
  trace event sequence and fault statistics, twice.
"""

import hashlib

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LennardJones, Simulation, SimulationConfig
from repro.faults import FAULTS, FaultPlan, FaultSpec, RetryPolicy
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.obs import observe

MAX_RETRIES = 6
STEPS = 3


def build_sim(rdma: bool):
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice((4, 2, 2), edge)
    v = maxwell_velocities(len(x), 1.44, seed=23)
    cfg = SimulationConfig(
        dt=0.005, skin=0.3, pattern="parallel-p2p", rdma=rdma, neighbor_every=4
    )
    return Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 1, 1))


def ghost_digest(sim) -> str:
    h = hashlib.sha256()
    for rank in range(sim.world.size):
        atoms = sim.atoms_of(rank)
        h.update(atoms.x[atoms.nlocal : atoms.ntotal].tobytes())
        h.update(atoms.tag[atoms.nlocal : atoms.ntotal].tobytes())
    return h.hexdigest()


#: Strategy for absorbable fault specs (severity within the horizon).
absorbable_spec = st.one_of(
    st.builds(
        FaultSpec,
        kind=st.sampled_from(["drop", "delay", "reorder"]),
        probability=st.floats(0.3, 1.0),
        count=st.integers(1, 4),
        phases=st.just(("border",)),
        severity=st.integers(1, MAX_RETRIES),
    ),
    st.builds(
        FaultSpec,
        kind=st.sampled_from(["rdma-stale", "ring-stale"]),
        probability=st.floats(0.3, 1.0),
        count=st.integers(1, 3),
        severity=st.integers(1, MAX_RETRIES),
    ),
)


class TestAbsorbablePlansAreInvisible:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        faults=st.lists(absorbable_spec, min_size=1, max_size=3),
    )
    def test_ghosts_and_trajectory_bit_identical(self, seed, faults):
        plan = FaultPlan(
            seed=seed, policy=RetryPolicy(max_retries=MAX_RETRIES),
            faults=tuple(faults),
        )
        assert plan.absorbable()
        rdma = any(f.kind in ("rdma-stale", "ring-stale") for f in faults)

        clean = build_sim(rdma)
        clean.run(STEPS)

        faulted = build_sim(rdma)
        with FAULTS.inject(plan) as session:
            faulted.run(STEPS)

        assert session.stats.unabsorbed == 0
        assert faulted.degradations == []
        assert ghost_digest(faulted) == ghost_digest(clean)
        assert np.array_equal(faulted.gather_positions(), clean.gather_positions())


class TestReplayDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_same_plan_same_trace_sequence(self, seed):
        plan = FaultPlan(
            seed=seed,
            policy=RetryPolicy(max_retries=MAX_RETRIES),
            faults=(
                FaultSpec("drop", probability=0.5, phases=("border",),
                          severity=2, count=3),
                FaultSpec("reorder", probability=0.5, phases=("border",), count=3),
                FaultSpec("rdma-stale", probability=0.4, count=2),
            ),
        )

        def run():
            sim = build_sim(rdma=True)
            with observe(metrics=False) as (tracer, _):
                with FAULTS.inject(plan) as session:
                    sim.run(STEPS)
                key = (
                    [(s.name, s.cat, s.track) for s in tracer.spans if s.clock == "wall"],
                    [
                        (s.name, s.cat, s.track, s.ts, s.dur)
                        for s in tracer.spans
                        if s.clock == "model"
                    ],
                    [(e.name, e.cat, e.track) for e in tracer.instants],
                )
            return key, dict(session.stats.injected), session.stats.retries

        assert run() == run()
