"""Fault session + transport integration: envelopes, limbo, budget, purge."""

import pytest

from repro.faults import (
    FAULTS,
    FaultBudgetExceededError,
    FaultError,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.runtime.transport import Transport, _Envelope


def plan_of(*faults, **policy):
    return FaultPlan(seed=3, policy=RetryPolicy(**policy), faults=tuple(faults))


class TestEnvelopeProtocol:
    def test_idle_session_sends_plain_payloads(self):
        """No message faults armed -> no envelopes, zero-cost send path."""
        t = Transport(2)
        t.set_phase("border")
        with FAULTS.inject(plan_of(FaultSpec("tni-stall", stall=1e-6))):
            t.send(0, 1, "m", 1.0)
            assert not isinstance(t._boxes[(0, 1, "m")][0], _Envelope)
            assert t.recv(1, 0, "m") == 1.0

    def test_reorder_restored_by_sequence_numbers(self):
        t = Transport(2)
        t.set_phase("border")
        plan = plan_of(FaultSpec("reorder", phases=("border",)))
        with FAULTS.inject(plan) as session:
            for i in range(8):
                t.send(0, 1, "m", i)
            assert session.stats.injected.get("reorder", 0) > 0
            # The mailbox itself is shuffled...
            box = list(t._boxes[(0, 1, "m")])
            assert all(isinstance(e, _Envelope) for e in box)
            # ...but the receive path restores send order exactly.
            assert [t.recv(1, 0, "m") for _ in range(8)] == list(range(8))
        assert session.stats.unabsorbed == 0

    def test_exchange_phase_is_exempt(self):
        t = Transport(2)
        t.set_phase("exchange")
        with FAULTS.inject(plan_of(FaultSpec("drop", severity=1))) as session:
            t.send(0, 1, "m", "payload")
            assert t.recv(1, 0, "m") == "payload"
        assert session.stats.total_injected() == 0


class TestDropDelayLimbo:
    def test_drop_held_until_enough_polls(self):
        t = Transport(2)
        t.set_phase("border")
        with FAULTS.inject(plan_of(FaultSpec("drop", severity=2, count=1))) as session:
            t.send(0, 1, "m", 7.0)
            assert t.try_recv(1, 0, "m") is None  # in limbo, not delivered
            t.fault_poll(1, 0, "m")  # poll 1 of 2
            assert t.try_recv(1, 0, "m") is None
            t.fault_poll(1, 0, "m")  # poll 2 releases it
            assert t.try_recv(1, 0, "m") == 7.0
            assert session.stats.absorbed == 1
        assert session.stats.unabsorbed == 0

    def test_traffic_log_counts_held_messages(self):
        """Held messages are still *sent*: accounting stays fault-free-identical."""
        t = Transport(2)
        t.set_phase("border")
        with FAULTS.inject(plan_of(FaultSpec("drop", severity=1, count=1))):
            t.send(0, 1, "m", 1.0)
        assert t.log.count() == 1

    def test_unreleased_limbo_counts_unabsorbed(self):
        t = Transport(2)
        t.set_phase("border")
        with FAULTS.inject(plan_of(FaultSpec("drop", severity=5, count=1))) as session:
            t.send(0, 1, "m", 1.0)
        assert session.stats.unabsorbed == 1

    def test_count_limits_firings(self):
        t = Transport(2)
        t.set_phase("border")
        with FAULTS.inject(plan_of(FaultSpec("drop", severity=1, count=2))) as session:
            for i in range(5):
                t.send(0, 1, "m", i)
            assert session.stats.injected["drop"] == 2
            t.fault_poll(1, 0, "m")
            # Delivered messages plus the two released ones, in order.
            assert [t.recv(1, 0, "m") for _ in range(5)] == list(range(5))


class TestBudgetAndPurge:
    def test_budget_exceeded_raises(self):
        t = Transport(2)
        t.set_phase("border")
        plan = plan_of(FaultSpec("drop", severity=1), fault_budget=1)
        with FAULTS.inject(plan) as session:
            t.send(0, 1, "a", 1)
            session.check_budget()  # 1 injected <= budget 1
            t.send(0, 1, "b", 2)
            with pytest.raises(FaultBudgetExceededError):
                session.check_budget()
            t.fault_poll(1, 0, "a")
            t.fault_poll(1, 0, "b")

    def test_purge_clears_boxes_and_sequences(self):
        t = Transport(2)
        t.set_phase("border")
        with FAULTS.inject(plan_of(FaultSpec("reorder", count=1))):
            t.send(0, 1, "m", 1)
            t.send(0, 1, "m", 2)
            assert t.purge() == 2
            assert t.pending_count() == 0
            # Sequence counters restart: the next envelope is seq 0 again.
            t.send(0, 1, "m", 3)
            assert t._boxes[(0, 1, "m")][0].seq == 0
            t.purge()

    def test_nested_sessions_rejected(self):
        with FAULTS.inject(FaultPlan()):
            with pytest.raises(FaultError, match="already active"):
                FAULTS.activate(FaultPlan())

    def test_degrade_writes_off_limbo(self):
        t = Transport(2)
        t.set_phase("border")
        with FAULTS.inject(plan_of(FaultSpec("drop", severity=9, count=1))) as session:
            t.send(0, 1, "m", 1)
            session.on_degrade("parallel-p2p", "p2p")
        assert session.stats.degradations == 1
        assert session.stats.degraded_casualties == 1
        assert session.stats.unabsorbed == 0  # written off, not leaked


class TestDeterminism:
    def test_same_plan_same_verdicts(self):
        plan = plan_of(
            FaultSpec("drop", probability=0.4, severity=1),
            FaultSpec("reorder", probability=0.3),
        )

        def run():
            t = Transport(2)
            t.set_phase("border")
            verdicts = []
            with FAULTS.inject(plan) as session:
                for i in range(30):
                    t.send(0, 1, "m", i)
                verdicts = dict(session.stats.injected)
                for _ in range(5):
                    t.fault_poll(1, 0, "m")
                got = [t.recv(1, 0, "m") for _ in range(30)]
            return verdicts, got

        assert run() == run()
        # And the retry layer restored order despite the faults.
        assert run()[1] == list(range(30))
