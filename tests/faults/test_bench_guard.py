"""The faults-off bench guard: an idle fault layer must be free.

The wall-clock bound is gated by the bench CLI (where adaptive sampling
can take its time); here we assert the deterministic halves hard — the
armed-but-empty session changes neither modeled time nor traffic — and
only sanity-bound the wall ratio, so the test never flakes on a noisy
runner.
"""

from repro.obs.bench import (
    SUITES,
    fault_overhead_guard,
    render_fault_guard,
)


class TestFaultOverheadGuard:
    def test_idle_layer_is_deterministically_free(self):
        guard = fault_overhead_guard(repeats=1)
        assert {e["key"] for e in guard["entries"]} == {
            cfg.key for cfg in SUITES["smoke"]
        }
        for entry in guard["entries"]:
            # The hard guarantees: zero modeled time added, traffic
            # byte-for-byte identical.
            assert entry["model_equal"], entry["key"]
            assert entry["traffic_equal"], entry["key"]
            # Wall sanity bound only (the 2% gate lives in the CLI).
            assert entry["overhead"] < 0.5, entry

    def test_render_names_every_config(self):
        guard = {
            "limit": 0.02,
            "ok": False,
            "entries": [
                {
                    "key": "lj/3stage/2x2x2",
                    "model_equal": True,
                    "traffic_equal": False,
                    "wall_off_min": 0.1,
                    "wall_on_min": 0.11,
                    "overhead": 0.1,
                    "samples": 5,
                    "ok": False,
                }
            ],
        }
        text = render_fault_guard(guard)
        assert "lj/3stage/2x2x2" in text
        assert "FAIL" in text

    def test_faults_off_suite_declared(self):
        assert "faults-off" in SUITES
        assert SUITES["faults-off"] == SUITES["smoke"]
