"""Property-based tests of the network simulator's cost model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import FUGAKU
from repro.network import Message, NetworkSimulator, MpiStack, UtofuStack, simulate_round

sizes = st.lists(st.integers(8, 64 * 1024), min_size=1, max_size=20)
stacks = st.sampled_from([UtofuStack(), MpiStack()])


class TestMonotonicity:
    @settings(max_examples=30)
    @given(nbytes=st.integers(8, 32 * 1024), stack=stacks)
    def test_bigger_message_never_faster(self, nbytes, stack):
        sim = NetworkSimulator(stack)
        t1 = sim.point_to_point_time(nbytes, 1)
        t2 = sim.point_to_point_time(nbytes * 2, 1)
        assert t2 >= t1

    @settings(max_examples=30)
    @given(nbytes=st.integers(8, 4096), hops=st.integers(0, 6), stack=stacks)
    def test_more_hops_never_faster(self, nbytes, hops, stack):
        sim = NetworkSimulator(stack)
        assert sim.point_to_point_time(nbytes, hops + 1) >= sim.point_to_point_time(
            nbytes, hops
        )

    @settings(max_examples=25)
    @given(msg_sizes=sizes, stack=stacks)
    def test_adding_messages_never_faster(self, msg_sizes, stack):
        sim = NetworkSimulator(stack)
        msgs = [Message(n) for n in msg_sizes]
        t_all = sim.run_round(msgs).completion_time
        t_fewer = sim.run_round(msgs[:-1]).completion_time
        assert t_all >= t_fewer

    @settings(max_examples=25)
    @given(msg_sizes=sizes)
    def test_staging_never_faster_than_one_round(self, msg_sizes):
        """Barriers only add: splitting a round into stages costs >= the
        bulk round with the same serial thread."""
        sim = NetworkSimulator(UtofuStack())
        msgs = [Message(n) for n in msg_sizes]
        bulk = sim.run_round(msgs).completion_time
        staged = sim.run_staged([[m] for m in msgs]).completion_time
        assert staged >= bulk * 0.999

    @settings(max_examples=25)
    @given(msg_sizes=sizes)
    def test_parallel_threads_never_slower(self, msg_sizes):
        """Spreading messages over distinct (thread, TNI) pairs cannot
        lose to injecting them all from one thread."""
        sim = NetworkSimulator(UtofuStack())
        serial = sim.run_round([Message(n) for n in msg_sizes]).completion_time
        spread = sim.run_round(
            [Message(n, thread=i % 6, tni=i % 6) for i, n in enumerate(msg_sizes)]
        ).completion_time
        assert spread <= serial * 1.001


class TestAccounting:
    @settings(max_examples=25)
    @given(msg_sizes=sizes, known=st.booleans())
    def test_wire_message_count(self, msg_sizes, known):
        stack = MpiStack()
        res = simulate_round([Message(n, known_length=known) for n in msg_sizes], stack)
        expected = len(msg_sizes) * (1 if known else 2)
        assert res.wire_messages == expected

    @settings(max_examples=25)
    @given(msg_sizes=sizes)
    def test_arrivals_after_injection_start(self, msg_sizes):
        res = simulate_round([Message(n) for n in msg_sizes], UtofuStack())
        assert all(a > 0 for a in res.arrivals)
        assert res.completion_time == max(res.arrivals)

    @settings(max_examples=20)
    @given(msg_sizes=sizes, start=st.floats(0.0, 1e-3))
    def test_start_time_shifts_results(self, msg_sizes, start):
        msgs = [Message(n) for n in msg_sizes]
        base = simulate_round(msgs, UtofuStack())
        shifted = simulate_round(msgs, UtofuStack(), start_time=start)
        assert shifted.completion_time == pytest.approx(
            base.completion_time + start, abs=1e-12
        )

    @settings(max_examples=20)
    @given(nbytes=st.integers(8, 65536))
    def test_wire_time_floor(self, nbytes):
        """No message completes faster than pure hardware limits."""
        t = NetworkSimulator(UtofuStack()).point_to_point_time(nbytes, 1)
        assert t >= FUGAKU.rdma_put_latency + nbytes / FUGAKU.link_bandwidth
