"""Property-based tests: neighbor lists, message combine, load balancing,
ring buffers, transport."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import combine, split, write_into
from repro.machine import RdmaEngine
from repro.core.rdma_buffers import BufferOverwriteError, RecvBufferRing
from repro.md.neighbor import build_pairs, build_pairs_bruteforce
from repro.runtime.threadpool import WorkItem, makespan, split_load


class TestNeighborListProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(2, 120),
        frac=st.floats(0.3, 1.0),
        cutoff=st.floats(0.3, 4.0),
        seed=st.integers(0, 10_000),
    )
    def test_binned_equals_bruteforce(self, n, frac, cutoff, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 6, size=(n, 3))
        nlocal = max(1, int(n * frac))
        for half in (True, False):
            got = set(zip(*map(tuple, build_pairs(x, nlocal, cutoff, half=half))))
            want = set(
                zip(*map(tuple, build_pairs_bruteforce(x, nlocal, cutoff, half=half)))
            )
            assert got == want

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 100), seed=st.integers(0, 10_000))
    def test_half_list_covers_each_close_pair_once(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 5, size=(n, 3))
        i, j = build_pairs(x, n, 1.5, half=True)
        seen = set()
        for a, b in zip(i, j):
            key = (min(a, b), max(a, b))
            assert key not in seen
            seen.add(key)
        # every close pair present
        iu, ju = np.triu_indices(n, k=1)
        d = x[iu] - x[ju]
        close = np.einsum("ij,ij->i", d, d) < 1.5**2
        assert seen == {(int(a), int(b)) for a, b in zip(iu[close], ju[close])}


class TestMessageCombineProperties:
    @given(
        payload=arrays(
            np.float64,
            st.integers(0, 200),
            elements=st.floats(-1e12, 1e12, allow_nan=False),
        )
    )
    def test_roundtrip(self, payload):
        assert np.array_equal(split(combine(payload)), payload)

    @given(
        payload=arrays(
            np.float64,
            st.integers(0, 50),
            elements=st.floats(-1e6, 1e6, allow_nan=False),
        ),
        slack=st.integers(1, 64),
    )
    def test_write_into_oversized_buffer(self, payload, slack):
        buf = np.full(payload.size + 1 + slack, np.nan)
        write_into(buf, payload)
        assert np.array_equal(split(buf), payload)

    @given(rows=st.integers(0, 40))
    def test_shaped_roundtrip(self, rows):
        payload = np.arange(rows * 3, dtype=float).reshape(rows, 3)
        out = split(combine(payload), trailing_shape=(3,))
        assert np.array_equal(out, payload)


class TestLoadBalanceProperties:
    costs = st.lists(st.floats(0.0, 100.0), min_size=1, max_size=40)

    @given(costs=costs, threads=st.integers(1, 8))
    def test_partition_complete_and_disjoint(self, costs, threads):
        items = [WorkItem(k, c) for k, c in enumerate(costs)]
        bins = split_load(items, threads)
        seen = sorted(w.payload for b in bins for w in b)
        assert seen == list(range(len(costs)))

    @given(costs=costs, threads=st.integers(1, 8))
    def test_greedy_bound(self, costs, threads):
        """List-scheduling guarantee: makespan <= mean + (1-1/m) * max."""
        items = [WorkItem(k, c) for k, c in enumerate(costs)]
        ms = makespan(split_load(items, threads))
        bound = sum(costs) / threads + (1 - 1 / threads) * max(costs)
        assert ms <= bound + 1e-9
        assert ms >= max(sum(costs) / threads, max(costs)) - 1e-9  # lower bound

    @given(costs=costs)
    def test_single_thread_gets_everything(self, costs):
        items = [WorkItem(k, c) for k, c in enumerate(costs)]
        bins = split_load(items, 1)
        assert makespan(bins) == pytest.approx(sum(costs))


class TestRingProperties:
    @settings(max_examples=20)
    @given(depth=st.integers(1, 8), ops=st.integers(1, 40))
    def test_ring_never_corrupts_fifo(self, depth, ops):
        """Arbitrary interleaving of (write, consume) that never exceeds
        `depth` outstanding keeps FIFO order."""
        engine = RdmaEngine()
        ring = RecvBufferRing(engine, 0, capacity_elems=4, depth=depth)
        written, read = [], []
        counter = 0
        rng = np.random.default_rng(depth * 1000 + ops)
        for _ in range(ops):
            if ring.outstanding() < depth and (
                ring.outstanding() == 0 or rng.random() < 0.5
            ):
                _, region = ring.acquire_for_write()
                region.data[0] = counter
                written.append(counter)
                counter += 1
            else:
                read.append(int(ring.consume()[0]))
        while ring.outstanding():
            read.append(int(ring.consume()[0]))
        assert read == written

    @given(depth=st.integers(1, 6))
    def test_overflow_always_detected(self, depth):
        engine = RdmaEngine()
        ring = RecvBufferRing(engine, 0, capacity_elems=4, depth=depth)
        for _ in range(depth):
            ring.acquire_for_write()
        with pytest.raises(BufferOverwriteError):
            ring.acquire_for_write()


class TestTransportProperties:
    @settings(max_examples=20)
    @given(
        msgs=st.lists(
            st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 5)),
            max_size=40,
        )
    )
    def test_every_send_is_received_exactly_once(self, msgs):
        from repro.runtime import Transport

        t = Transport(4)
        for k, (src, dst, tag) in enumerate(msgs):
            t.send(src, dst, tag, k)
        received = []
        for src, dst, tag in msgs:
            received.append(t.recv(dst, src, tag))
        assert sorted(received) == list(range(len(msgs)))
        t.assert_drained()
