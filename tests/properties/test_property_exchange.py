"""Property-based equivalence of the communication patterns.

The central invariant of the whole reproduction, hammered with random
systems: for arbitrary atom configurations, rank grids and shell
thicknesses, every exchange pattern must deliver the same forces as the
independent serial reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LennardJones, SerialReference, Simulation, SimulationConfig
from repro.md import Box

GRIDS = [(2, 2, 2), (2, 2, 1), (3, 2, 1), (1, 1, 1)]


def build_random_system(n_atoms: int, box_edge: float, seed: int):
    rng = np.random.default_rng(seed)
    # Poisson gas with a soft minimum separation to avoid force overflow:
    # jittered grid placement guarantees no overlaps.
    grid_n = int(np.ceil(n_atoms ** (1 / 3)))
    spacing = box_edge / grid_n
    pts = []
    for i in range(grid_n):
        for j in range(grid_n):
            for k in range(grid_n):
                pts.append((i + 0.5, j + 0.5, k + 0.5))
    pts = np.asarray(pts[:n_atoms]) * spacing
    x = pts + rng.uniform(-0.2, 0.2, size=pts.shape) * spacing
    v = rng.normal(0, 0.3, size=pts.shape)
    v -= v.mean(axis=0)
    return x, v, Box((0, 0, 0), (box_edge,) * 3)


class TestPatternEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        grid_idx=st.integers(0, len(GRIDS) - 1),
        n_atoms=st.integers(60, 200),
        skin=st.floats(0.1, 0.6),
    )
    def test_all_patterns_match_serial_forces(self, seed, grid_idx, n_atoms, skin):
        grid = GRIDS[grid_idx]
        box_edge = 9.0
        x, v, box = build_random_system(n_atoms, box_edge, seed)
        cutoff = 2.0
        ref = SerialReference(x, v, box, LennardJones(cutoff=cutoff), dt=0.002)
        for pattern, rdma in (("3stage", False), ("p2p", True), ("parallel-p2p", False)):
            cfg = SimulationConfig(
                dt=0.002, skin=skin, pattern=pattern, rdma=rdma, neighbor_every=5
            )
            sim = Simulation(
                x, v, box, LennardJones(cutoff=cutoff), cfg, grid=grid
            )
            sim.setup()
            assert np.allclose(sim.gather_forces(), ref.f, atol=1e-9), (
                f"pattern {pattern} grid {grid} seed {seed}"
            )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000), steps=st.integers(3, 12))
    def test_patterns_agree_after_dynamics(self, seed, steps):
        x, v, box = build_random_system(120, 9.0, seed)
        positions = {}
        for pattern in ("3stage", "p2p"):
            cfg = SimulationConfig(
                dt=0.002, skin=0.4, pattern=pattern, neighbor_every=4
            )
            sim = Simulation(x, v, box, LennardJones(cutoff=2.0), cfg, grid=(2, 2, 1))
            sim.run(steps)
            positions[pattern] = sim.gather_positions()
        d = box.minimum_image(positions["3stage"] - positions["p2p"])
        assert np.abs(d).max() < 1e-9

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_ghost_population_halved_by_newton(self, seed):
        x, v, box = build_random_system(180, 9.0, seed)
        counts = {}
        for newton in (True, False):
            cfg = SimulationConfig(
                dt=0.002, skin=0.4, pattern="p2p", newton=newton
            )
            sim = Simulation(x, v, box, LennardJones(cutoff=2.0), cfg, grid=(2, 2, 1))
            sim.setup()
            counts[newton] = sum(sim.atoms_of(r).nghost for r in range(4))
        # Half shell vs full shell: half in expectation (the plus-side
        # strips hold different atoms than the minus-side ones, so the
        # equality is statistical for a finite random system).
        assert counts[True] * 2 == pytest.approx(counts[False], rel=0.15)
        assert counts[True] < counts[False]
