"""Property-based tests: ghost geometry, torus metric, pattern algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    full_shell_volume,
    half_shell_volume,
    offset_volume,
    stage_volumes,
)
from repro.core.patterns import (
    half_shell_offsets,
    lex_positive,
    offset_hops,
    shell_offsets,
)
from repro.machine import TofuTopology

side = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
cutoff = st.floats(min_value=0.01, max_value=50.0, allow_nan=False)


class TestGhostVolumeProperties:
    @given(a=side, r=cutoff)
    def test_half_is_always_half(self, a, r):
        assert half_shell_volume(a, r) == pytest.approx(full_shell_volume(a, r) / 2)

    @given(a=side, r=cutoff)
    def test_full_shell_is_slab_minus_box(self, a, r):
        assert full_shell_volume(a, r) == pytest.approx(
            (a + 2 * r) ** 3 - a**3, rel=1e-9
        )

    @given(a=side, r=cutoff)
    def test_stages_sum_to_half_shell_each_direction(self, a, r):
        assert 2 * sum(stage_volumes(a, r)) == pytest.approx(
            full_shell_volume(a, r), rel=1e-9
        )

    @given(a=side, r=cutoff)
    def test_offsets_partition_shell(self, a, r):
        total = sum(offset_volume(a, r, o) for o in shell_offsets(1))
        # offset_volume caps the depth at a, so this equals the shell only
        # when r <= a; in general it is <= the shell volume.
        if r <= a:
            assert total == pytest.approx(full_shell_volume(a, r), rel=1e-9)
        else:
            assert total <= full_shell_volume(a, r) + 1e-9

    @given(a=side, r=cutoff)
    def test_monotone_in_cutoff(self, a, r):
        assert full_shell_volume(a, r * 1.5) > full_shell_volume(a, r)

    @given(
        a=side,
        r=cutoff,
        o=st.tuples(
            st.integers(-2, 2), st.integers(-2, 2), st.integers(-2, 2)
        ).filter(lambda t: t != (0, 0, 0)),
    )
    def test_offset_volume_symmetric_under_negation(self, a, r, o):
        assert offset_volume(a, r, o) == pytest.approx(
            offset_volume(a, r, tuple(-v for v in o))
        )


class TestPatternAlgebra:
    @given(radius=st.integers(1, 4))
    def test_shell_counts(self, radius):
        n = (2 * radius + 1) ** 3 - 1
        assert len(shell_offsets(radius)) == n
        assert len(half_shell_offsets(radius)) == n // 2

    @given(radius=st.integers(1, 3))
    def test_half_shell_partition(self, radius):
        """Each offset is in exactly one of: half shell, its mirror."""
        half = set(half_shell_offsets(radius))
        for o in shell_offsets(radius):
            mirror = tuple(-v for v in o)
            assert (o in half) != (mirror in half)

    @given(
        o=st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3)).filter(
            lambda t: t != (0, 0, 0)
        )
    )
    def test_lex_antisymmetry(self, o):
        assert lex_positive(o) != lex_positive(tuple(-v for v in o))

    @given(
        o=st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-3, 3))
    )
    def test_hops_nonnegative_l1(self, o):
        assert offset_hops(o) == abs(o[0]) + abs(o[1]) + abs(o[2])


coords = st.integers(0, 100)


class TestTorusMetric:
    @settings(max_examples=50)
    @given(a=st.integers(0, 47), b=st.integers(0, 47), c=st.integers(0, 47))
    def test_metric_axioms(self, a, b, c):
        topo = TofuTopology((2, 2, 1))
        ca, cb, cc = topo.coord_of(a), topo.coord_of(b), topo.coord_of(c)
        # identity, symmetry, triangle inequality
        assert topo.hops(ca, ca) == 0
        assert topo.hops(ca, cb) == topo.hops(cb, ca)
        assert topo.hops(ca, cc) <= topo.hops(ca, cb) + topo.hops(cb, cc)
        if a != b:
            assert topo.hops(ca, cb) >= 1

    @settings(max_examples=30)
    @given(idx=st.integers(0, 47))
    def test_virtual_fold_roundtrip(self, idx):
        topo = TofuTopology((2, 2, 1))
        c = topo.coord_of(idx)
        assert topo.coord_for_virtual(topo.virtual_of(c)) == c

    @settings(max_examples=30)
    @given(idx=st.integers(0, 143))
    def test_index_roundtrip(self, idx):
        topo = TofuTopology((3, 2, 2))
        assert topo.node_index(topo.coord_of(idx)) == idx


class TestBorderMaskProperties:
    @settings(max_examples=25)
    @given(
        rcomm=st.floats(0.2, 4.9),
        seed=st.integers(0, 1000),
    )
    def test_mask_equals_explicit_region_test(self, rcomm, seed):
        from repro.md.region import SubBox

        sub = SubBox((0, 0, 0), (10, 10, 10), (1, 1, 1), (3, 3, 3))
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, 10, size=(50, 3))
        for off in [(1, 0, 0), (0, -1, 0), (1, 1, -1)]:
            mask = sub.border_mask(x, off, rcomm)
            for point, m in zip(x, mask):
                expect = True
                for k, o in enumerate(off):
                    if o > 0:
                        expect &= point[k] >= 10 - rcomm
                    elif o < 0:
                        expect &= point[k] < rcomm
                assert m == expect
