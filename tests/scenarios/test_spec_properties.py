"""Property-based invariants of the spec expansion pipeline.

Hammered with randomly composed (but structurally valid) specs:

* parse -> expand -> serialize round-trips losslessly, and the
  serialization is byte-stable (same spec, byte-identical fleet);
* expansion is deterministic and duplicate-free (ids and documents);
* every scenario a valid spec generates passes its own L0–L2
  validation — the generator can never emit a config the validator
  would reject.

Axis pools are drawn from the paper's configuration space with
geometries that keep ``rcomm <= sub_box_edge`` so the L2 feasibility
check is exercised, not trivially skipped.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenarios import (
    dumps_fleet,
    expand_spec,
    fleet_doc,
    validate_fleet,
    validate_spec,
)

# Feasible-by-construction pools: box edge 9.0 with grid dims <= 3 keeps
# every sub-box edge >= 3.0, above the largest rcomm (2.0 + 0.3 skin).
GRID_POOL = [(1, 1, 1), (2, 1, 1), (1, 2, 1), (2, 2, 1), (2, 2, 2), (3, 1, 1)]
CUTOFF_POOL = [1.0, 1.3, 1.55, 1.8, 2.0]
NODES_POOL = [768, 2160, 6144, 18432, 36864]
FAULT_POOL = ["drop", "delay", "reorder", "tni-stall", "vcq-credit", "inject-jitter"]


def geometry(grid):
    return {"grid": list(grid), "box_edge": 9.0, "atoms": 150}


subset = st.lists          # alias for readability below


@st.composite
def equivalence_blocks(draw, name):
    grids = draw(subset(st.sampled_from(GRID_POOL), min_size=1, max_size=3,
                        unique=True))
    cutoffs = draw(subset(st.sampled_from(CUTOFF_POOL), min_size=1, max_size=2,
                          unique=True))
    newtons = draw(st.sampled_from([[True], [False], [True, False]]))
    sample = draw(st.one_of(st.just("all"), st.integers(0, 4)))
    return {
        "name": name,
        "role": "equivalence",
        "axes": {
            "geometry": [geometry(g) for g in grids],
            "cutoff": cutoffs,
            "newton": newtons,
        },
        "fixed": {"observability": draw(
            st.sampled_from(["off", "telemetry", "rankprof"]))},
        "tolerances": {"force_atol": 1e-10},
        "sample": sample,
    }


@st.composite
def model_blocks(draw, name):
    return {
        "name": name,
        "role": "model",
        "axes": {
            "potential": draw(st.sampled_from([["lj"], ["eam"], ["lj", "eam"]])),
            "variant": draw(st.sampled_from([["ref"], ["opt"], ["ref", "opt"]])),
            "nodes": draw(subset(st.sampled_from(NODES_POOL), min_size=1,
                                 max_size=3, unique=True)),
        },
        "sample": draw(st.one_of(st.just("all"), st.integers(0, 3))),
    }


@st.composite
def fault_blocks(draw, name):
    return {
        "name": name,
        "role": "fault",
        "axes": {
            "geometry": [geometry(g) for g in draw(
                subset(st.sampled_from(GRID_POOL[:4]), min_size=1, max_size=2,
                       unique=True))],
            "cutoff": draw(subset(st.sampled_from(CUTOFF_POOL), min_size=1,
                                  max_size=1, unique=True)),
            "newton": [True],
            "fault": draw(subset(st.sampled_from(FAULT_POOL), min_size=1,
                                 max_size=2, unique=True)),
        },
        "sample": 2,
    }


@st.composite
def specs(draw):
    blocks = [draw(equivalence_blocks("eq-a"))]
    if draw(st.booleans()):
        blocks.append(draw(model_blocks("model-a")))
    if draw(st.booleans()):
        blocks.append(draw(fault_blocks("fault-a")))
    return {
        "schema": "repro-scenario-spec/1",
        "name": draw(st.from_regex(r"[a-z][a-z0-9-]{0,11}", fullmatch=True)),
        "defaults": {
            "skin": 0.3,
            "dt": 0.002,
            "neighbor_every": 3,
            "steps": 2,
            "patterns": ["parallel-p2p", "p2p", "3stage"],
            "rdma": False,
        },
        "blocks": blocks,
    }


class TestRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(spec=specs())
    def test_parse_expand_serialize_round_trips(self, spec):
        """JSON round-trip of the spec changes nothing, and the fleet
        artifact embeds the expansion losslessly and byte-stably."""
        assert validate_spec(spec) == []
        scenarios = expand_spec(spec)
        reparsed = json.loads(json.dumps(spec))
        assert expand_spec(reparsed) == scenarios

        text = dumps_fleet(spec, scenarios)
        doc = json.loads(text)
        assert doc["schema"] == "repro-scenario-fleet/1"
        assert doc["scenarios"] == scenarios
        assert doc["count"] == len(scenarios)
        assert doc["sampled"] == sum(
            1 for s in scenarios if s["tier"] == "sampled")
        # Serializing the parsed artifact again is byte-identical.
        assert json.dumps(doc, indent=1, sort_keys=True) + "\n" == text
        assert json.dumps(fleet_doc(spec, scenarios), indent=1,
                          sort_keys=True) + "\n" == text

    @settings(max_examples=20, deadline=None)
    @given(spec=specs())
    def test_expansion_is_deterministic_and_duplicate_free(self, spec):
        first = expand_spec(spec)
        second = expand_spec(spec)
        assert first == second
        assert dumps_fleet(spec, first) == dumps_fleet(spec, second)
        ids = [s["id"] for s in first]
        assert len(set(ids)) == len(ids)
        assert first, "a valid spec never expands to an empty fleet"

    @settings(max_examples=20, deadline=None)
    @given(spec=specs())
    def test_sample_quotas_bound_the_sampled_tier(self, spec):
        scenarios = expand_spec(spec)
        for block in spec["blocks"]:
            members = [s for s in scenarios if s["block"] == block["name"]]
            sampled = [s for s in members if s["tier"] == "sampled"]
            quota = block.get("sample", "all")
            if quota == "all":
                assert len(sampled) == len(members)
            else:
                assert len(sampled) == min(quota, len(members))


class TestSelfValidation:
    @settings(max_examples=12, deadline=None)
    @given(spec=specs())
    def test_every_generated_config_passes_its_own_l0_l2(self, spec):
        """The generator and the validator can never disagree: whatever
        a structurally valid spec expands to sails through L0 (schema),
        L1 (commlint feasibility), and L2 (model sanity)."""
        result = validate_fleet(expand_spec(spec), level="L2")
        assert result.ok, result.render()
        assert result.rejected == 0
