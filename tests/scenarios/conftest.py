"""Fixtures for the scenario-fleet suites.

``scenario_fleet`` is the one config source: the expanded committed
``fleet-core`` spec.  Tests marked ``fleet_full`` only run under
``REPRO_FLEET=full`` (the exhaustive tier); everything else runs in
every tier.
"""

import pytest

from repro.scenarios import default_fleet, fleet_mode


def pytest_collection_modifyitems(config, items):
    if fleet_mode() == "full":
        return
    skip = pytest.mark.skip(
        reason="full-fleet tier only: set REPRO_FLEET=full to run"
    )
    for item in items:
        if "fleet_full" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def scenario_fleet():
    """The expanded fleet-core spec (read-only tuple of scenarios)."""
    return default_fleet()
