"""Executable fleet batteries: fault absorption + full-tier smoke.

The sampled tier runs on every invocation; the exhaustive tier (every
fault-plane and model-sweep scenario) sits behind the ``fleet_full``
marker and only runs under ``REPRO_FLEET=full``.
"""

import pytest

from repro.scenarios import (
    fault_scenarios,
    model_scenarios,
    scenario_ids,
    scenarios_by_role,
    validate_scenario,
)

SAMPLED_FAULTS = fault_scenarios()
SAMPLED_MODELS = model_scenarios()
ALL_FAULTS = scenarios_by_role("fault")
ALL_MODELS = scenarios_by_role("model")


class TestSampledBattery:
    @pytest.mark.parametrize(
        "scenario", SAMPLED_FAULTS, ids=scenario_ids(SAMPLED_FAULTS)
    )
    def test_fault_scenario_absorbs_and_matches_clean_run(self, scenario):
        """L3 on a fault scenario is the absorption battery: the plan's
        faults are injected, every one must be absorbed by retries, and
        the faulted forces must equal the clean run bit for bit."""
        issues = validate_scenario(scenario, level="L3")
        assert issues == [], "\n".join(i.render() for i in issues)

    @pytest.mark.parametrize(
        "scenario", SAMPLED_MODELS, ids=scenario_ids(SAMPLED_MODELS)
    )
    def test_model_scenario_prices_finite(self, scenario):
        issues = validate_scenario(scenario, level="L2")
        assert issues == [], "\n".join(i.render() for i in issues)


@pytest.mark.fleet_full
class TestFullFleet:
    @pytest.mark.parametrize("scenario", ALL_FAULTS, ids=scenario_ids(ALL_FAULTS))
    def test_every_fault_plane_scenario_absorbs(self, scenario):
        issues = validate_scenario(scenario, level="L3")
        assert issues == [], "\n".join(i.render() for i in issues)

    @pytest.mark.parametrize("scenario", ALL_MODELS, ids=scenario_ids(ALL_MODELS))
    def test_every_model_sweep_scenario_prices_finite(self, scenario):
        issues = validate_scenario(scenario, level="L2")
        assert issues == [], "\n".join(i.render() for i in issues)
