"""Registry + committed spec: the fleet the test suites actually consume."""

import json
import pathlib

import pytest

from repro.scenarios import (
    FLEET_ENV,
    SCENARIO_SCHEMA,
    bench_scenarios,
    core_spec,
    differential_scenarios,
    dumps_core_spec,
    expand_spec,
    fault_scenarios,
    fleet_mode,
    legacy_equivalence_configs,
    model_scenarios,
    scenario_ids,
    scenarios_by_role,
)

SPEC_PATH = pathlib.Path(__file__).resolve().parents[2] / "examples" / "fleet_core.spec.json"


class TestCommittedSpec:
    def test_committed_file_matches_in_tree_source(self):
        """examples/fleet_core.spec.json IS dumps_core_spec(), byte for byte."""
        assert SPEC_PATH.read_text(encoding="utf-8") == dumps_core_spec()

    def test_committed_file_expands_to_the_default_fleet(self, scenario_fleet):
        doc = json.loads(SPEC_PATH.read_text(encoding="utf-8"))
        assert expand_spec(doc) == list(scenario_fleet)


class TestFleetShape:
    def test_at_least_200_scenarios(self, scenario_fleet):
        assert len(scenario_fleet) >= 200

    def test_every_scenario_is_schema_tagged_and_unique(self, scenario_fleet):
        ids = scenario_ids(list(scenario_fleet))
        assert len(set(ids)) == len(ids)
        for s in scenario_fleet:
            assert s["schema"] == SCENARIO_SCHEMA
            assert s["tier"] in ("sampled", "full")

    def test_roles_partition_the_fleet(self, scenario_fleet):
        by_role = {r: scenarios_by_role(r) for r in
                   ("equivalence", "fault", "model", "bench")}
        assert sum(len(v) for v in by_role.values()) == len(scenario_fleet)
        assert len(by_role["equivalence"]) == 72  # 24 per observability regime
        assert len(by_role["fault"]) == 48
        assert len(by_role["model"]) == 80
        assert len(by_role["bench"]) == 6


class TestTiers:
    def test_default_mode_keeps_full_differential_coverage(self, monkeypatch):
        monkeypatch.delenv(FLEET_ENV, raising=False)
        assert fleet_mode() == "default"
        for regime in ("off", "telemetry", "rankprof"):
            assert len(differential_scenarios(regime)) == 24

    def test_sampled_mode_is_the_48_config_ci_tier(self, monkeypatch):
        monkeypatch.setenv(FLEET_ENV, "sampled")
        counts = {r: len(differential_scenarios(r))
                  for r in ("off", "telemetry", "rankprof")}
        assert counts == {"off": 24, "telemetry": 12, "rankprof": 12}
        assert sum(counts.values()) == 48

    def test_sampled_tier_is_deterministic(self, monkeypatch):
        monkeypatch.setenv(FLEET_ENV, "sampled")
        first = scenario_ids(differential_scenarios("telemetry"))
        second = scenario_ids(differential_scenarios("telemetry"))
        assert first == second

    def test_fault_and_model_tiers(self, monkeypatch):
        monkeypatch.delenv(FLEET_ENV, raising=False)
        assert len(fault_scenarios()) == 4
        assert len(model_scenarios()) == 4
        assert len(bench_scenarios()) == 6
        monkeypatch.setenv(FLEET_ENV, "full")
        assert len(fault_scenarios()) == 48
        assert len(model_scenarios()) == 80

    def test_invalid_mode_is_rejected(self, monkeypatch):
        monkeypatch.setenv(FLEET_ENV, "bogus")
        with pytest.raises(ValueError, match="REPRO_FLEET"):
            fleet_mode()

    def test_unknown_regime_is_rejected(self):
        with pytest.raises(ValueError, match="unknown regime"):
            differential_scenarios("metrics")


class TestLegacyEmbedding:
    def test_legacy_24_with_legacy_seeds_in_every_regime(self, monkeypatch):
        """The deleted hand-written lists are a subset of the fleet —
        same (grid, cutoff, newton) triples, same seeds, in all three
        differential regimes (telemetry/rankprof reused the exchange
        suite's CONFIGS and seed formula verbatim)."""
        monkeypatch.delenv(FLEET_ENV, raising=False)
        legacy = legacy_equivalence_configs()
        assert len(legacy) == 24
        grids = [k[0] for k in legacy[::6]]
        for regime in ("off", "telemetry", "rankprof"):
            by_key = {
                (tuple(s["params"]["grid"]), s["params"]["cutoff"],
                 s["params"]["newton"]): s
                for s in differential_scenarios(regime)
            }
            for grid, cutoff, newton in legacy:
                s = by_key[(grid, cutoff, newton)]
                assert s["seed"] == (
                    1000 * grids.index(grid)
                    + int(100 * cutoff)
                    + (1 if newton else 0)
                )

    def test_spec_source_still_declares_the_legacy_axes(self):
        spec = core_spec()
        off = next(b for b in spec["blocks"] if b["name"] == "equivalence-off")
        assert [tuple(g["grid"]) for g in off["axes"]["geometry"]] == [
            (1, 1, 1), (2, 1, 1), (2, 2, 1), (2, 2, 2)
        ]
        assert off["axes"]["cutoff"] == [1.3, 1.55, 1.8]
        assert off["axes"]["newton"] == [True, False]
