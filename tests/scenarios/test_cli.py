"""`repro scenarios` CLI: generation determinism + error-path contract.

Error-path contract (shared with `repro diag`): inputs failing a
*check* print the failing check and exit 1 — never a traceback; IO and
usage problems exit 2.
"""

import json

import pytest

from repro.cli import main as repro_main
from repro.scenarios import dumps_core_spec
from repro.scenarios.cli import main as scenarios_main


@pytest.fixture()
def spec_path(tmp_path):
    path = tmp_path / "fleet_core.spec.json"
    path.write_text(dumps_core_spec(), encoding="utf-8")
    return str(path)


class TestGenerate:
    def test_generate_is_byte_deterministic_and_validated(
        self, spec_path, tmp_path, capsys
    ):
        """The acceptance bar: >= 200 validated repro-scenario/1 configs,
        and the same spec always produces byte-identical output."""
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert scenarios_main(["generate", spec_path, "--out", str(out_a)]) == 0
        assert scenarios_main(["generate", spec_path, "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()
        doc = json.loads(out_a.read_text())
        assert doc["schema"] == "repro-scenario-fleet/1"
        assert doc["count"] >= 200
        assert all(s["schema"] == "repro-scenario/1" for s in doc["scenarios"])
        assert "generated" in capsys.readouterr().err

    def test_repro_cli_dispatches_scenarios(self, spec_path, capsys):
        assert repro_main(["scenarios", "list", spec_path, "--role", "bench"]) == 0
        out = capsys.readouterr().out
        assert "bench-ci/" in out and "role=bench" in out

    def test_list_tier_filter(self, spec_path, capsys):
        assert scenarios_main(["list", spec_path, "--tier", "sampled"]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if ln]
        assert lines and all("tier=sampled" in ln for ln in lines)

    def test_validate_happy_path(self, spec_path, capsys):
        assert scenarios_main(["validate", spec_path, "--level", "L1"]) == 0
        assert "0 rejected" in capsys.readouterr().out


class TestErrorPaths:
    def test_malformed_json_prints_check_and_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        assert scenarios_main(["validate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "FAILED json-parse" in err
        assert "Traceback" not in err

    def test_structurally_invalid_spec_prints_failing_checks(
        self, tmp_path, capsys
    ):
        doc = json.loads(dumps_core_spec())
        doc["schema"] = "repro-mystery/9"
        doc["blocks"][0]["role"] = "vibes"
        bad = tmp_path / "bad.spec.json"
        bad.write_text(json.dumps(doc), encoding="utf-8")
        assert scenarios_main(["generate", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "FAILED $.schema" in err
        assert "FAILED $.blocks[0].role" in err
        assert "Traceback" not in err

    def test_generate_rejections_render_level_check_and_hint(
        self, tmp_path, capsys
    ):
        """A structurally valid spec whose expansion fails L1/L2 (stencil
        cannot reach the cutoff) must render the rejecting check + hint
        and exit 1 without writing the fleet."""
        doc = json.loads(dumps_core_spec())
        # 4x4x4 ranks over a 9.0 box: sub-box edge 2.25 < rcomm 2.35.
        doc["blocks"] = [{
            "name": "infeasible",
            "role": "equivalence",
            "axes": {
                "geometry": [{"grid": [4, 4, 4], "box_edge": 9.0, "atoms": 150}],
                "cutoff": [2.05],
                "newton": [True],
            },
            "fixed": {"observability": "off"},
        }]
        bad = tmp_path / "infeasible.spec.json"
        out = tmp_path / "fleet.json"
        bad.write_text(json.dumps(doc), encoding="utf-8")
        assert scenarios_main(["generate", str(bad), "--out", str(out)]) == 1
        err = capsys.readouterr().err
        assert "infeasible/" in err
        assert "hint:" in err
        assert "rejected" in err
        assert not out.exists()

    def test_missing_spec_file_exits_2(self, tmp_path, capsys):
        assert scenarios_main(["generate", str(tmp_path / "gone.json")]) == 2
        assert "scenarios:" in capsys.readouterr().err


class TestBenchFleet:
    def test_bench_fleet_runs_the_bench_role_configs(self, tmp_path, capsys):
        """`bench fleet <spec>` prices every bench-role scenario with the
        existing per-group machinery and writes a repro-bench/1 artifact."""
        from repro.obs import bench

        spec = json.loads(dumps_core_spec())
        # Keep only the three smoke-sized configs for runtime.
        blk = next(b for b in spec["blocks"] if b["name"] == "bench-ci")
        blk["axes"]["config"] = [
            c for c in blk["axes"]["config"] if c["grid"] == [2, 2, 2]
        ]
        spec["blocks"] = [blk]
        spec_path = tmp_path / "bench.spec.json"
        spec_path.write_text(json.dumps(spec), encoding="utf-8")
        out = tmp_path / "fleet_bench.json"
        assert bench.main(
            ["fleet", str(spec_path), "--out", str(out), "--repeats", "1"]
        ) == 0
        doc = json.loads(out.read_text())
        assert doc["suite"] == "fleet:fleet-core"
        assert len(doc["runs"]) == 3
        assert bench.validate_bench_doc(doc) == 3
        assert "bench fleet: 3 configs" in capsys.readouterr().out

    def test_bench_fleet_without_bench_scenarios_exits_2(self, tmp_path, capsys):
        from repro.obs import bench

        spec = json.loads(dumps_core_spec())
        spec["blocks"] = [b for b in spec["blocks"] if b["role"] != "bench"]
        spec_path = tmp_path / "nobench.spec.json"
        spec_path.write_text(json.dumps(spec), encoding="utf-8")
        assert bench.main(
            ["fleet", str(spec_path), "--out", str(tmp_path / "o.json")]
        ) == 2
        assert "error:" in capsys.readouterr().out
