"""The always-on telemetry plane: instruments, flush, export, gating."""

import math

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig
from repro.faults import FAULTS, FaultPlan, FaultSpec, RetryPolicy
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.obs.telemetry import (
    AUTODUMP_EVENTS,
    TELEMETRY,
    StepTelemetry,
    get_telemetry,
)
from repro.obs.trace import TRACER

CELLS = (4, 2, 2)
GRID = (2, 1, 1)
STEPS = 6


def build_sim(pattern="parallel-p2p", rdma=False, **cfg_kw):
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice(CELLS, edge)
    v = maxwell_velocities(len(x), 1.44, seed=11)
    cfg = SimulationConfig(
        dt=0.005, skin=0.3, pattern=pattern, rdma=rdma, neighbor_every=4, **cfg_kw
    )
    return Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=GRID)


class TestPrimitives:
    def test_counter_accumulates_per_label_set(self):
        t = StepTelemetry()
        t.counter_add("widgets_total", 2.0, kind="a")
        t.counter_add("widgets_total", 3.0, kind="a")
        t.counter_add("widgets_total", 1.0, kind="b")
        assert t.counter_value("widgets_total", kind="a") == 5.0
        assert t.counter_value("widgets_total", kind="b") == 1.0
        assert t.counter_value("widgets_total", kind="missing") == 0.0

    def test_counter_rejects_negative_increment(self):
        with pytest.raises(ValueError):
            StepTelemetry().counter_add("x_total", -1.0)

    def test_gauge_overwrites(self):
        t = StepTelemetry()
        t.gauge_set("pool_bytes", 100.0)
        t.gauge_set("pool_bytes", 40.0)
        assert t.gauges[("pool_bytes", ())] == 40.0

    def test_observe_builds_one_sketch_per_label_set(self):
        t = StepTelemetry()
        for v in (1.0, 2.0, 3.0):
            t.observe("stage_wall_seconds", v, stage="Comm")
        t.observe("stage_wall_seconds", 9.0, stage="Pair")
        comm = t.sketch("stage_wall_seconds", stage="Comm")
        assert comm is not None and comm.count == 3
        assert t.sketch("stage_wall_seconds", stage="Pair").count == 1
        assert t.sketch("stage_wall_seconds", stage="Neigh") is None

    def test_label_order_is_canonical(self):
        t = StepTelemetry()
        t.counter_add("c_total", 1.0, b="2", a="1")
        assert t.counter_value("c_total", a="1", b="2") == 1.0


class TestControl:
    def test_get_telemetry_is_the_singleton(self):
        assert get_telemetry() is TELEMETRY

    def test_default_enabled(self):
        assert TELEMETRY.enabled is True

    def test_disabled_context_restores(self):
        with TELEMETRY.scope():
            t = StepTelemetry()
            TELEMETRY.attach(t)
            with TELEMETRY.disabled():
                assert TELEMETRY.enabled is False
                assert TELEMETRY.active is None
                TELEMETRY.emit("retry")  # no active sink: dropped
            assert TELEMETRY.enabled is True
            assert TELEMETRY.active is t
            assert t.counter_value("events_total", kind="retry") == 0.0

    def test_emit_routes_to_active(self):
        with TELEMETRY.scope():
            t = StepTelemetry()
            TELEMETRY.attach(t)
            TELEMETRY.emit("retry", phase="forward")
            assert t.counter_value("events_total", kind="retry") == 1.0
            assert t.flight.events[-1]["phase"] == "forward"

    def test_autodump_kinds_are_the_documented_set(self):
        assert AUTODUMP_EVENTS == {
            "degradation", "retry-exhausted", "selfcheck-failure",
        }


class TestExport:
    def build(self):
        t = StepTelemetry()
        t.counter_add("messages_total", 7.0)
        t.counter_add("events_total", 2.0, kind="retry")
        t.gauge_set("pool_bytes", 2048.0)
        for v in (0.001, 0.002, 0.004):
            t.observe("stage_wall_seconds", v, stage="Comm")
        return t

    def test_openmetrics_format(self):
        text = self.build().render_openmetrics()
        lines = text.splitlines()
        assert "# TYPE repro_messages_total counter" in lines
        assert "repro_messages_total 7" in lines
        assert 'repro_events_total{kind="retry"} 2' in lines
        assert "# TYPE repro_pool_bytes gauge" in lines
        assert "repro_pool_bytes 2048" in lines
        assert "# TYPE repro_stage_wall_seconds summary" in lines
        assert any(
            line.startswith('repro_stage_wall_seconds{stage="Comm",quantile="0.5"}')
            for line in lines
        )
        assert 'repro_stage_wall_seconds_count{stage="Comm"} 3' in lines
        assert any(
            line.startswith('repro_stage_wall_seconds_sum{stage="Comm"}')
            for line in lines
        )
        assert lines[-1] == "# EOF"
        assert text.endswith("# EOF\n")

    def test_snapshot_structure(self):
        snap = self.build().snapshot()
        assert snap["counters"]['events_total{kind="retry"}'] == 2.0
        assert snap["gauges"]["pool_bytes"] == 2048.0
        sk = snap["sketches"]['stage_wall_seconds{stage="Comm"}']
        assert sk["count"] == 3
        assert snap["flight"] == {"frames": 0, "events": 0}


class TestFlushIntegration:
    def run_sim(self, **kw):
        with TELEMETRY.scope():
            sim = build_sim(**kw)
            sim.setup()
            sim.run(STEPS)
        return sim

    def test_counters_mirror_exchange_and_transport_bookkeeping(self):
        sim = self.run_sim()
        t = sim.telemetry
        assert t is not None
        stats = sim.exchange.plan_stats()
        log = sim.world.transport.log
        assert t.counter_value("steps_total") == STEPS
        assert t.counter_value("fastpath_phases_total") == stats["fastpath_phases"]
        assert t.counter_value("plan_builds_total") == stats["plan_builds"]
        assert t.counter_value("messages_total") == log.grand_total_count
        assert t.counter_value("message_bytes_total") == log.grand_total_bytes

    def test_telemetry_leaves_fastpath_on(self):
        sim = self.run_sim()
        assert sim.exchange.plan_stats()["fastpath_phases"] > 0
        assert sim.exchange._gate_blocks["observability"] == 0

    def test_tracer_still_gates_fastpath(self):
        prev = TRACER.enabled
        TRACER.enabled = True
        try:
            sim = self.run_sim()
        finally:
            TRACER.enabled = prev
        assert sim.exchange.plan_stats()["fastpath_phases"] == 0
        assert sim.exchange._gate_blocks["observability"] > 0

    def test_stage_sketch_sums_telescope_to_timers(self):
        sim = self.run_sim()
        t = sim.telemetry
        for stage, total in sim.timers.wall.items():
            sk = t.sketch("stage_wall_seconds", stage=stage.value)
            assert sk is not None and sk.count == STEPS
            assert sk.total == pytest.approx(total, abs=0.0)

    def test_model_sketches_only_when_modeling(self):
        sim = self.run_sim(model_machine_time=True)
        t = sim.telemetry
        comm = t.sketch("stage_model_seconds", stage="Comm")
        assert comm is not None and comm.count == STEPS
        plain = self.run_sim()
        assert plain.telemetry.sketch("stage_model_seconds", stage="Comm") is None

    def test_flight_frames_carry_step_summaries(self):
        sim = self.run_sim()
        frames = list(sim.telemetry.flight.frames)
        assert [f["step"] for f in frames] == list(range(1, STEPS + 1))
        last = frames[-1]
        assert last["pattern"] == sim.exchange.name
        assert set(last["wall"]) == {s.value for s in sim.timers.wall}
        assert last["messages"] >= 0 and last["bytes"] >= 0

    def test_disabled_plane_attaches_nothing(self):
        with TELEMETRY.disabled():
            sim = build_sim()
            sim.run(3)
        assert sim.telemetry is None

    def test_degradation_keeps_counters_monotonic(self):
        # A lethal drop swaps the exchange object mid-run; the flush
        # must reset its cumulative-feed snapshot (not subtract the old
        # object's totals, which would produce a negative delta).
        plan = FaultPlan(
            seed=1,
            policy=RetryPolicy(max_retries=2),
            faults=(FaultSpec("drop", phases=("border",), severity=99, count=1),),
        )
        with TELEMETRY.scope():
            sim = build_sim()
            with FAULTS.inject(plan):
                sim.run(STEPS)
        t = sim.telemetry
        assert sim.degradations == [("parallel-p2p", "p2p")]
        assert t.counter_value("events_total", kind="degradation") == 1.0
        assert t.counter_value("steps_total") == STEPS
        ev = next(e for e in t.flight.events if e["kind"] == "degradation")
        assert (ev["from_pattern"], ev["to_pattern"]) == ("parallel-p2p", "p2p")
        for (name, _), v in t.counters.items():
            assert v >= 0.0 and math.isfinite(v), name


class TestBitIdenticalPhysics:
    def test_trajectory_identical_with_and_without_telemetry(self):
        with TELEMETRY.scope():
            on = build_sim()
            on.run(STEPS)
        with TELEMETRY.disabled():
            off = build_sim()
            off.run(STEPS)
        assert on.telemetry is not None and off.telemetry is None
        assert np.array_equal(on.gather_positions(), off.gather_positions())
