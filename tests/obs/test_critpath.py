"""Critical-path analyzer: exact attribution, chain shape, exports."""

import csv

import pytest

from repro.machine.params import FUGAKU
from repro.network.simulator import Message, NetworkSimulator
from repro.network.stacks import MpiStack, UtofuStack
from repro.obs import observe
from repro.obs.critpath import (
    CATEGORY_LABELS,
    CriticalPathResult,
    analyze_critical_path,
    critpath_counter_events,
    render_critical_path,
    write_critpath_csv,
)
from repro.obs.export import chrome_trace_events, validate_chrome_trace
from repro.obs.trace import Tracer


def p2p_messages(n=13, nbytes=4096):
    # 13 sends spread over 6 threads / 6 TNIs, like a half-shell schedule.
    return [
        Message(nbytes=nbytes, hops=1 + i % 3, rank=0, thread=i % 6, tni=i % 6)
        for i in range(n)
    ]


def traced_round(messages, stack=None):
    sim = NetworkSimulator(stack or UtofuStack())
    with observe(metrics=False) as (tracer, _):
        res = sim.run_round(messages)
    return tracer, res


def traced_staged(stages, stack=None):
    sim = NetworkSimulator(stack or MpiStack())
    with observe(metrics=False) as (tracer, _):
        res = sim.run_staged(stages)
    return tracer, res


class TestAttributionExactness:
    def test_partition_sums_to_completion(self):
        tracer, res = traced_round(p2p_messages())
        cp = analyze_critical_path(tracer)
        assert cp.completion - cp.base == pytest.approx(res.completion_time, abs=0)
        assert cp.total_attributed == pytest.approx(cp.total_time, rel=1e-12)

    def test_staged_partition_includes_barriers(self):
        stages = [[Message(nbytes=2048, thread=0), Message(nbytes=2048, thread=0)]
                  for _ in range(3)]
        tracer, res = traced_staged(stages)
        cp = analyze_critical_path(tracer)
        assert cp.completion == pytest.approx(res.completion_time, abs=0)
        assert cp.total_attributed == pytest.approx(cp.total_time, rel=1e-12)
        assert cp.attribution.get("barrier", 0.0) > 0.0

    def test_message_and_wire_counts(self):
        tracer, _ = traced_round(p2p_messages(7))
        cp = analyze_critical_path(tracer)
        assert cp.messages == 7
        assert cp.wire_segments >= 7

    def test_chain_is_contiguous(self):
        tracer, _ = traced_round(p2p_messages())
        cp = analyze_critical_path(tracer)
        for prev, nxt in zip(cp.segments, cp.segments[1:]):
            assert nxt.start == pytest.approx(prev.end, abs=0)
        assert cp.segments[0].start == pytest.approx(cp.base, abs=1e-15)
        assert cp.segments[-1].end == pytest.approx(cp.completion, abs=0)


class TestBottleneckStory:
    def test_single_tni_contention_blames_the_engine(self):
        # Six threads hammering one TNI: serialization dominates.
        msgs = [Message(nbytes=65536, thread=i % 6, tni=0) for i in range(12)]
        tracer, _ = traced_round(msgs)
        cp = analyze_critical_path(tracer)
        assert cp.top_bottleneck() == "tni"
        assert cp.resource_busy["tni0"] > 0

    def test_mpi_staged_is_software_bound(self):
        # The 3-stage pattern under MPI: injection overhead + barriers
        # outweigh the wire (the paper's "why 3-stage loses").
        stages = [[Message(nbytes=1024, thread=0), Message(nbytes=1024, thread=0)]
                  for _ in range(3)]
        tracer, _ = traced_staged(stages, MpiStack())
        cp = analyze_critical_path(tracer)
        soft = cp.attribution.get("inject", 0) + cp.attribution.get("barrier", 0)
        assert soft > cp.attribution.get("wire", 0)

    def test_bottlenecks_ranked_and_sum_to_100(self):
        tracer, _ = traced_round(p2p_messages())
        cp = analyze_critical_path(tracer)
        ranked = cp.bottlenecks()
        shares = [pct for _, _, pct in ranked]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) == pytest.approx(100.0)

    def test_queue_time_recorded_as_blocked(self):
        msgs = [Message(nbytes=65536, thread=i % 6, tni=0) for i in range(12)]
        tracer, _ = traced_round(msgs)
        cp = analyze_critical_path(tracer)
        assert sum(cp.resource_blocked.values()) > 0


class TestInputsAndEdges:
    def test_empty_tracer(self):
        cp = analyze_critical_path(Tracer())
        assert cp.total_time == 0.0
        assert cp.segments == []
        assert cp.top_bottleneck() == ""

    def test_explicit_span_list(self):
        tracer, _ = traced_round(p2p_messages(3))
        cp = analyze_critical_path(spans=list(tracer.spans))
        assert cp.messages == 3

    def test_wall_spans_ignored(self):
        tracer, _ = traced_round(p2p_messages(3))
        tracer.add_wall_span("step", 0.0, 1.0, cat="inject")
        cp = analyze_critical_path(tracer)
        assert cp.completion < 0.5  # the 1 s wall span did not leak in


class TestRenderers:
    def test_text_report(self):
        tracer, _ = traced_round(p2p_messages())
        cp = analyze_critical_path(tracer)
        text = render_critical_path(cp)
        assert "Critical path" in text
        assert CATEGORY_LABELS["tni"] in text

    def test_csv_rows(self, tmp_path):
        tracer, _ = traced_round(p2p_messages())
        cp = analyze_critical_path(tracer)
        path = tmp_path / "cp.csv"
        write_critpath_csv(str(path), cp)
        with open(path, newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["rank", "category", "seconds", "percent", "label"]
        assert len(rows) == 1 + len(cp.attribution)
        total = sum(float(r[2]) for r in rows[1:])
        assert total == pytest.approx(cp.total_time, rel=1e-12)

    def test_counter_events_validate_in_trace(self):
        tracer, _ = traced_round(p2p_messages())
        cp = analyze_critical_path(tracer)
        extra = critpath_counter_events(cp)
        assert extra, "no counter events emitted"
        doc = chrome_trace_events(tracer, extra_events=extra)
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])
        names = {e["name"] for e in extra}
        assert names == {"critical-path", "critpath-seconds"}

    def test_counter_events_empty_result(self):
        assert critpath_counter_events(CriticalPathResult()) == []


class TestStructuredExport:
    def test_to_dict_preserves_the_partition(self):
        from repro.obs.critpath import critpath_to_dict

        tracer, _ = traced_round(p2p_messages())
        cp = analyze_critical_path(tracer)
        doc = critpath_to_dict(cp)
        assert doc["schema"] == "repro-critpath/1"
        assert doc["attribution"] == dict(cp.attribution)
        assert sum(doc["attribution"].values()) == pytest.approx(
            doc["total"], rel=1e-12
        )
        assert doc["messages"] == cp.messages
        assert [b["category"] for b in doc["bottlenecks"]] == [
            cat for cat, _, _ in cp.bottlenecks()
        ]
        assert len(doc["segments"]) == len(cp.segments)

    def test_spans_round_trip_through_chrome(self):
        import json as _json

        from repro.obs.export import spans_from_chrome

        tracer, _ = traced_round(p2p_messages())
        doc = _json.loads(_json.dumps(chrome_trace_events(tracer)))
        back = spans_from_chrome(doc)
        cp_direct = analyze_critical_path(tracer)
        cp_back = analyze_critical_path(spans=back)
        # µs round-trip keeps the attribution identical to analysis noise.
        assert cp_back.messages == cp_direct.messages
        assert set(cp_back.attribution) == set(cp_direct.attribution)
        for cat, secs in cp_direct.attribution.items():
            assert cp_back.attribution[cat] == pytest.approx(secs, rel=1e-6)


class TestCLI:
    def _write_trace(self, tmp_path):
        import json as _json

        from repro.obs.export import write_chrome_trace

        tracer, _ = traced_round(p2p_messages())
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer)
        _json.loads(path.read_text())  # sanity: valid JSON on disk
        return path

    def test_text_and_json_modes(self, tmp_path, capsys):
        import json as _json

        from repro.obs.critpath import main

        path = self._write_trace(tmp_path)
        assert main([str(path)]) == 0
        assert "critical path" in capsys.readouterr().out.lower()
        assert main([str(path), "--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro-critpath/1"
        assert sum(doc["attribution"].values()) == pytest.approx(
            doc["total"], rel=1e-9
        )

    def test_csv_side_output(self, tmp_path, capsys):
        from repro.obs.critpath import main

        path = self._write_trace(tmp_path)
        out = tmp_path / "cp.csv"
        assert main([str(path), "--csv", str(out), "--json"]) == 0
        capsys.readouterr()
        rows = list(csv.reader(out.open()))
        assert rows[0] == ["rank", "category", "seconds", "percent", "label"]
        assert len(rows) > 1

    def test_missing_or_spanless_trace_exits_2(self, tmp_path, capsys):
        import json as _json

        from repro.obs.critpath import main

        assert main([str(tmp_path / "gone.json")]) == 2
        empty = tmp_path / "empty.json"
        empty.write_text(_json.dumps({"traceEvents": []}))
        assert main([str(empty)]) == 2
        assert "no model-clock exchange spans" in capsys.readouterr().err
