"""QuantileSketch: determinism, mergeability, and the rank-error bound."""

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.sketch import QuantileSketch

#: Non-negative samples spanning the six orders of magnitude a stage
#: wall time can cover, zeros included (idle stages).
samples_strategy = st.lists(
    st.one_of(
        st.just(0.0),
        st.floats(min_value=1e-9, max_value=1e3, allow_nan=False,
                  allow_infinity=False),
    ),
    min_size=1,
    max_size=300,
)


def true_quantile(samples, q):
    """The 1-based rank ``max(1, ceil(q*n))`` value — the sketch's rank
    convention applied to the raw pooled samples."""
    ordered = sorted(samples)
    return ordered[max(1, math.ceil(q * len(ordered))) - 1]


class TestBasics:
    def test_empty_is_nan(self):
        sk = QuantileSketch()
        assert math.isnan(sk.quantile(0.5))
        assert sk.count == 0
        assert sk.mean == 0.0

    def test_rejects_negative_sample(self):
        with pytest.raises(ValueError):
            QuantileSketch().add(-1e-9)

    def test_rejects_bad_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(rel_accuracy=0.0)
        with pytest.raises(ValueError):
            QuantileSketch(rel_accuracy=1.0)

    def test_rejects_out_of_range_quantile(self):
        sk = QuantileSketch()
        sk.add(1.0)
        with pytest.raises(ValueError):
            sk.quantile(1.5)

    def test_zero_bucket_is_exact(self):
        sk = QuantileSketch()
        for _ in range(10):
            sk.add(0.0)
        sk.add(5.0)
        assert sk.quantile(0.5) == 0.0
        assert sk.min == 0.0 and sk.max == 5.0

    def test_single_value_all_quantiles(self):
        sk = QuantileSketch()
        sk.add(3.7)
        for q in (0.0, 0.5, 0.99, 1.0):
            # min/max clamping makes a singleton exact.
            assert sk.quantile(q) == 3.7

    def test_mean_is_exact(self):
        sk = QuantileSketch()
        vals = [0.1, 0.2, 0.3, 0.4]
        for v in vals:
            sk.add(v)
        assert sk.mean == sum(vals) / len(vals)
        assert sk.total == sum(vals)


class TestRankErrorBound:
    @settings(max_examples=60, deadline=None)
    @given(samples=samples_strategy)
    def test_quantiles_within_relative_error(self, samples):
        sk = QuantileSketch()
        for v in samples:
            sk.add(v)
        for q in (0.0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0):
            truth = true_quantile(samples, q)
            est = sk.quantile(q)
            assert abs(est - truth) <= truth * sk.rel_accuracy * 1.0000001, (
                f"q={q}: {est} vs true {truth}"
            )

    def test_tighter_accuracy_is_tighter(self):
        rough = QuantileSketch(rel_accuracy=0.05)
        fine = QuantileSketch(rel_accuracy=0.001)
        vals = [1.0 + 0.01 * i for i in range(200)]
        for v in vals:
            rough.add(v)
            fine.add(v)
        truth = true_quantile(vals, 0.5)
        assert abs(fine.quantile(0.5) - truth) <= abs(rough.quantile(0.5) - truth)


class TestDeterminism:
    @settings(max_examples=30, deadline=None)
    @given(samples=samples_strategy)
    def test_identical_streams_identical_sketches(self, samples):
        a, b = QuantileSketch(), QuantileSketch()
        for v in samples:
            a.add(v)
        for v in samples:
            b.add(v)
        assert a.to_dict() == b.to_dict()
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )
        for q in (0.5, 0.95, 0.99):
            assert a.quantile(q) == b.quantile(q)


class TestMergeability:
    @settings(max_examples=60, deadline=None)
    @given(left=samples_strategy, right=samples_strategy)
    def test_merge_equals_pooled_stream(self, left, right):
        merged = QuantileSketch()
        a, b = QuantileSketch(), QuantileSketch()
        for v in left:
            a.add(v)
        for v in right:
            b.add(v)
        a.merge(b)
        for v in left + right:
            merged.add(v)
        # merge(s(A), s(B)) == s(A + B) exactly, buckets and all —
        # except the total, which is order-sensitive float addition.
        assert a.buckets == merged.buckets
        assert a.zero_count == merged.zero_count
        assert a.count == merged.count
        assert a.min == merged.min and a.max == merged.max
        assert a.total == pytest.approx(merged.total, rel=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(left=samples_strategy, right=samples_strategy)
    def test_merged_quantiles_within_bound_of_pooled(self, left, right):
        a, b = QuantileSketch(), QuantileSketch()
        for v in left:
            a.add(v)
        for v in right:
            b.add(v)
        a.merge(b)
        pooled = left + right
        for q in (0.5, 0.95, 0.99):
            truth = true_quantile(pooled, q)
            assert abs(a.quantile(q) - truth) <= truth * a.rel_accuracy * 1.0000001

    def test_merge_rejects_mismatched_accuracy(self):
        with pytest.raises(ValueError):
            QuantileSketch(rel_accuracy=0.01).merge(QuantileSketch(rel_accuracy=0.02))


class TestSerialization:
    @settings(max_examples=30, deadline=None)
    @given(samples=samples_strategy)
    def test_round_trip_exact(self, samples):
        sk = QuantileSketch()
        for v in samples:
            sk.add(v)
        back = QuantileSketch.from_dict(sk.to_dict())
        assert back.to_dict() == sk.to_dict()
        for q in (0.5, 0.95, 0.99):
            assert back.quantile(q) == sk.quantile(q)

    def test_json_round_trip(self):
        sk = QuantileSketch()
        for v in (0.0, 1e-6, 3.0, 250.0):
            sk.add(v)
        doc = json.loads(json.dumps(sk.to_dict()))
        assert QuantileSketch.from_dict(doc).to_dict() == sk.to_dict()

    def test_empty_round_trip(self):
        sk = QuantileSketch()
        back = QuantileSketch.from_dict(sk.to_dict())
        assert back.count == 0
        assert math.isnan(back.quantile(0.5))


class TestEmptyPercentiles:
    """Empty-distribution semantics, unified across the stack."""

    def test_percentiles_on_empty_are_all_nan(self):
        out = QuantileSketch().percentiles(0.5, 0.95, 0.99)
        assert set(out) == {0.5, 0.95, 0.99}
        assert all(math.isnan(v) for v in out.values())

    def test_percentiles_out_of_range_still_raises_when_empty(self):
        with pytest.raises(ValueError):
            QuantileSketch().percentiles(0.5, 1.5)

    def test_percentiles_match_quantile_when_populated(self):
        sk = QuantileSketch()
        for v in (1.0, 2.0, 3.0, 4.0):
            sk.add(v)
        out = sk.percentiles(0.5, 0.99)
        assert out[0.5] == sk.quantile(0.5)
        assert out[0.99] == sk.quantile(0.99)

    def test_histogram_empty_percentile_is_nan_too(self):
        from repro.obs.metrics import Histogram

        h = Histogram("x", {}, buckets=(1.0, 2.0))
        assert math.isnan(h.percentile(50.0))
        assert math.isnan(h.percentile(99.0))
        with pytest.raises(ValueError):
            h.percentile(101.0)
        h.observe(1.5)
        assert not math.isnan(h.percentile(50.0))
