"""Scaling-curve capture: ladder parsing, artifact schema, CLI."""

import copy
import json

import pytest

from repro.obs import bench
from repro.obs.bench import BenchConfig, build_simulation
from repro.obs.scaling import (
    DEFAULT_LADDER,
    PATTERN_VARIANTS,
    SCHEMA,
    ScalingSpec,
    capture_scaling,
    parse_ladder,
    render_scaling,
    validate_scaling_doc,
    workload_from_sim,
    write_scaling,
)
from repro.perfmodel.scaling import modeled_ladder, ranks_to_nodes


@pytest.fixture(scope="module")
def doc():
    """One real 2-rung capture, shared by the read-only tests."""
    spec = ScalingSpec(steps=4)
    return capture_scaling(spec, ladder=DEFAULT_LADDER, repeats=1, label="unit")


class TestLadder:
    def test_parse(self):
        assert parse_ladder("1x2x2,2x2x2") == ((1, 2, 2), (2, 2, 2))
        assert parse_ladder(" 2x2x2 ") == ((2, 2, 2),)

    @pytest.mark.parametrize("bad", ["", "2x2", "2x2x2x2", "0x2x2", "axbxc"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_ladder(bad)

    def test_capture_rejects_unordered_ladder(self):
        with pytest.raises(ValueError, match="ordered by rank count"):
            capture_scaling(ScalingSpec(steps=1), ladder=((2, 2, 2), (1, 2, 2)))

    def test_ranks_to_nodes(self):
        # Fugaku runs 4 ranks per node.
        assert ranks_to_nodes(4) == 1
        assert ranks_to_nodes(8) == 2
        assert ranks_to_nodes(1) == 1
        with pytest.raises(ValueError):
            ranks_to_nodes(0)


class TestWorkloadProjection:
    def test_reads_the_live_system(self):
        sim = build_simulation(BenchConfig("lj", "parallel-p2p", (2, 2, 2), True))
        w = workload_from_sim(sim, "lj")
        assert w.potential == "lj"
        assert w.natoms == sim.natoms
        assert w.density == pytest.approx(sim.natoms / sim.box.volume)
        assert w.rcomm == pytest.approx(sim.potential.cutoff + sim.config.skin)
        assert w.allreduce_every == 0

    def test_eam_gets_the_allreduce_cadence(self):
        sim = build_simulation(BenchConfig("eam", "parallel-p2p", (2, 2, 2), True))
        assert workload_from_sim(sim, "eam").allreduce_every == 5


class TestCapture:
    def test_schema_validates(self, doc):
        assert doc["schema"] == SCHEMA
        assert validate_scaling_doc(doc) == 2

    def test_rungs_strictly_increase(self, doc):
        ranks = [pt["ranks"] for pt in doc["points"]]
        assert ranks == sorted(set(ranks)) == [4, 8]

    def test_first_rung_efficiency_is_one(self, doc):
        assert doc["points"][0]["efficiency"] == pytest.approx(1.0, abs=1e-12)
        assert doc["points"][0]["divergence"] == pytest.approx(0.0, abs=1e-12)

    def test_strong_scaling_holds_atoms_fixed(self, doc):
        atoms = {pt["atoms"] for pt in doc["points"]}
        assert len(atoms) == 1
        assert doc["workload"]["natoms"] in atoms

    def test_predicted_matches_modeled_ladder(self, doc):
        variant = doc["spec"]["variant"]
        assert variant == PATTERN_VARIANTS[doc["spec"]["pattern"]]
        w = doc["workload"]
        from repro.perfmodel.stagemodel import Workload

        workload = Workload(
            name="check", potential=doc["spec"]["potential"],
            natoms=w["natoms"], density=w["density"], rcomm=w["rcomm"],
            dt=0.005, rebuild_every=20,
        )
        predicted = modeled_ladder(workload, variant, [4, 8])
        for pt, pred in zip(doc["points"], predicted):
            assert pt["predicted"]["nodes"] == pred.nodes

    def test_every_rung_embeds_imbalance_and_rankprof(self, doc):
        for pt in doc["points"]:
            assert pt["imbalance"]["max_mean"] >= 1.0
            rp = pt["rankprof"]
            assert rp["schema"] == "repro-rankprof/1"
            assert rp["ranks"] == pt["ranks"]


class TestValidate:
    def test_rejects_wrong_schema(self, doc):
        bad = copy.deepcopy(doc)
        bad["schema"] = "repro-scaling/0"
        with pytest.raises(ValueError, match=r"\$\.schema"):
            validate_scaling_doc(bad)

    def test_rejects_non_increasing_rungs(self, doc):
        bad = copy.deepcopy(doc)
        bad["points"] = bad["points"][::-1]
        with pytest.raises(ValueError, match="strictly increase"):
            validate_scaling_doc(bad)

    def test_rejects_stage_set_mismatch(self, doc):
        bad = copy.deepcopy(doc)
        del bad["points"][0]["model"]["stages"]["Comm"]
        with pytest.raises(ValueError, match="stage set mismatch"):
            validate_scaling_doc(bad)

    def test_rejects_broken_embedded_rankprof(self, doc):
        bad = copy.deepcopy(doc)
        bad["points"][1]["rankprof"]["schema"] = "nope"
        with pytest.raises(ValueError, match=r"\$\.points\[1\]\.rankprof"):
            validate_scaling_doc(bad)

    def test_rejects_off_efficiency_anchor(self, doc):
        bad = copy.deepcopy(doc)
        bad["points"][0]["efficiency"] = 0.9
        with pytest.raises(ValueError, match="efficiency 1.0"):
            validate_scaling_doc(bad)


class TestRenderAndIO:
    def test_render_lists_every_rung(self, doc):
        text = render_scaling(doc)
        assert "scaling capture [unit]" in text
        for pt in doc["points"]:
            assert f"\n{pt['ranks']:>5} |" in text

    def test_write_round_trip(self, doc, tmp_path):
        path = tmp_path / "SCALING_unit.json"
        write_scaling(str(path), doc)
        back = json.loads(path.read_text())
        assert validate_scaling_doc(back) == 2
        assert back["points"][0]["ranks"] == doc["points"][0]["ranks"]


class TestCLI:
    def test_bench_scaling_subcommand(self, tmp_path, capsys):
        out = tmp_path / "SCALING_cli.json"
        rc = bench.main([
            "scaling", "--out", str(out), "--ladder", "1x2x2,2x2x2",
            "--steps", "3", "--repeats", "1", "--label", "cli",
        ])
        assert rc == 0
        doc = json.loads(out.read_text())
        assert validate_scaling_doc(doc) == 2
        assert doc["label"] == "cli"
        assert "scaling capture [cli]" in capsys.readouterr().out

    def test_bad_ladder_exits_2(self, tmp_path):
        out = tmp_path / "SCALING_bad.json"
        assert bench.main(
            ["scaling", "--out", str(out), "--ladder", "2x2"]
        ) == 2
        assert not out.exists()
