"""Bench harness: schema, determinism, regression gating, CLI."""

import copy
import json

import pytest

from repro.obs import bench
from repro.obs.bench import (
    BenchConfig,
    SCHEMA,
    SUITES,
    compare,
    render_report,
    run_config,
    run_suite,
    validate_bench_doc,
    write_report_csv,
)


@pytest.fixture(scope="module")
def doc():
    """One real smoke-suite artifact, shared by the read-only tests."""
    return run_suite("smoke", repeats=1, label="test")


class TestRun:
    def test_schema_validates(self, doc):
        assert validate_bench_doc(doc) == len(SUITES["smoke"])
        assert doc["schema"] == SCHEMA

    def test_keys_cover_declared_suite(self, doc):
        assert {r["key"] for r in doc["runs"]} == {c.key for c in SUITES["smoke"]}

    def test_config_key_format(self):
        cfg = BenchConfig("eam", "parallel-p2p", (2, 2, 2), rdma=True)
        assert cfg.key == "eam/parallel-p2p/2x2x2/rdma"
        assert BenchConfig("lj", "3stage", (2, 2, 2), rdma=False).key == "lj/3stage/2x2x2"

    def test_model_metrics_deterministic(self):
        cfg = BenchConfig("lj", "3stage", (2, 2, 2), rdma=False, steps=3)
        a, _ = run_config(cfg, repeats=1)
        b, _ = run_config(cfg, repeats=1)
        assert a["model"] == b["model"]
        assert a["traffic"] == b["traffic"]
        assert a["critpath"]["attribution"] == b["critpath"]["attribution"]

    def test_critpath_attribution_partitions_completion(self, doc):
        for run in doc["runs"]:
            cp = run["critpath"]
            assert sum(cp["attribution"].values()) == pytest.approx(
                cp["completion"], rel=1e-9
            )

    def test_three_stage_vs_p2p_story(self, doc):
        by_key = {r["key"]: r for r in doc["runs"]}
        staged = by_key["lj/3stage/2x2x2"]["critpath"]
        p2p = by_key["lj/parallel-p2p/2x2x2/rdma"]["critpath"]
        # Fewer, bigger messages but a slower exchange: Table 1's claim.
        assert staged["messages"] < p2p["messages"]
        assert staged["completion"] > p2p["completion"]

    def test_model_tables_present(self, doc):
        t = doc["model_tables"]
        assert (t["table1"]["msgs_p2p"], t["table1"]["msgs_3stage"]) == (13, 6)
        assert t["fig13"]["lj_speedup_36864"] > 2.0
        assert t["fig13"]["eam_speedup_36864"] > 1.5

    def test_unknown_suite_rejected(self):
        with pytest.raises(ValueError, match="unknown suite"):
            run_suite("nope")


class TestValidate:
    def test_rejects_wrong_schema(self, doc):
        bad = copy.deepcopy(doc)
        bad["schema"] = "repro-bench/0"
        with pytest.raises(ValueError, match=r"\$\.schema"):
            validate_bench_doc(bad)

    def test_rejects_duplicate_keys(self, doc):
        bad = copy.deepcopy(doc)
        bad["runs"].append(copy.deepcopy(bad["runs"][0]))
        with pytest.raises(ValueError, match="duplicate key"):
            validate_bench_doc(bad)

    def test_rejects_broken_attribution(self, doc):
        bad = copy.deepcopy(doc)
        bad["runs"][0]["critpath"]["attribution"]["wire"] *= 2
        with pytest.raises(ValueError, match="attribution"):
            validate_bench_doc(bad)

    def test_error_names_offending_path(self, doc):
        bad = copy.deepcopy(doc)
        del bad["runs"][1]["wall"]["stages"]["Comm"]
        with pytest.raises(ValueError, match=r"runs\[1\]\.wall\.stages\.Comm"):
            validate_bench_doc(bad)


def regress(doc, key="lj/3stage/2x2x2", factor=1.10):
    """Copy of ``doc`` with one config's Comm model time inflated."""
    bad = copy.deepcopy(doc)
    for run in bad["runs"]:
        if run["key"] == key:
            run["model"]["stages"]["Comm"] *= factor
            run["model"]["total"] = sum(run["model"]["stages"].values())
    return bad


class TestCompare:
    def test_identical_artifacts_pass(self, doc):
        report = compare(doc, doc)
        assert report.ok
        assert report.regressions == []

    def test_ten_percent_stage_regression_fails(self, doc):
        report = compare(doc, regress(doc, factor=1.10))
        assert not report.ok
        paths = {e.path for e in report.regressions}
        assert "runs[lj/3stage/2x2x2].model.Comm" in paths

    def test_within_tolerance_passes(self, doc):
        assert compare(doc, regress(doc, factor=1.02)).ok

    def test_improvement_is_not_a_regression(self, doc):
        report = compare(doc, regress(doc, factor=0.80))
        assert report.ok
        assert any(e.status == "improved" for e in report.entries)

    def test_speedup_drop_is_a_regression(self, doc):
        bad = copy.deepcopy(doc)
        bad["model_tables"]["fig13"]["lj_speedup_36864"] *= 0.85
        report = compare(doc, bad)
        assert any(
            e.path == "fig13.lj_speedup_36864" and e.status == "regressed"
            for e in report.entries
        )

    def test_missing_run_is_a_regression(self, doc):
        bad = copy.deepcopy(doc)
        bad["runs"] = [r for r in bad["runs"] if r["key"] != "lj/3stage/2x2x2"]
        report = compare(doc, bad)
        assert any(e.path == "runs[lj/3stage/2x2x2]" for e in report.regressions)

    def test_traffic_shift_is_a_regression_both_directions(self, doc):
        for factor in (0.9, 1.1):
            bad = copy.deepcopy(doc)
            run = next(r for r in bad["runs"] if r["key"] == "lj/3stage/2x2x2")
            run["traffic"]["forward"]["count"] = int(
                run["traffic"]["forward"]["count"] * factor
            )
            assert not compare(doc, bad).ok

    def test_tolerance_override(self, doc):
        bad = regress(doc, factor=1.10)
        assert compare(doc, bad, tolerances={"model_stage": 0.2, "model_total": 0.2}).ok

    def test_wall_noise_warns_not_gates(self, doc):
        bad = copy.deepcopy(doc)
        for run in bad["runs"]:
            for stats in [*run["wall"]["stages"].values(), run["wall"]["total"]]:
                for k in ("min", "max", "mean", "median"):
                    stats[k] *= 3.0
        report = compare(doc, bad)
        assert report.ok
        assert report.warnings
        assert not compare(doc, bad, gate_wall=True).ok

    def test_render_mentions_regressed_path(self, doc):
        text = compare(doc, regress(doc)).render()
        assert "REGRESSED" in text and "model.Comm" in text


class TestCLI:
    def test_run_compare_report_roundtrip(self, doc, tmp_path, capsys, monkeypatch):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(doc))
        cand.write_text(json.dumps(regress(doc)))

        assert bench.main(["compare", str(base), str(base)]) == 0
        assert bench.main(["compare", str(base), str(cand)]) == 1
        assert bench.main(["compare", str(base), str(cand), "--warn-only"]) == 0
        assert bench.main(
            ["compare", str(base), str(cand), "--tol", "model_stage=0.2",
             "--tol", "model_total=0.2"]
        ) == 0
        assert bench.main(["compare", str(base), str(cand), "--tol", "bogus=1"]) == 2

        csv_path = tmp_path / "bench.csv"
        assert bench.main(["report", str(base), "--csv", str(csv_path)]) == 0
        out = capsys.readouterr().out
        assert "lj/3stage/2x2x2" in out
        header = csv_path.read_text().splitlines()[0]
        assert header.startswith("key,stage,wall_min")

    def test_report_renderer(self, doc):
        text = render_report(doc)
        assert "bottleneck" in text
        assert "Fig13 speedups" in text

    def test_csv_writer_row_count(self, doc, tmp_path):
        path = tmp_path / "r.csv"
        write_report_csv(str(path), doc)
        rows = path.read_text().splitlines()
        assert len(rows) == 1 + 5 * len(doc["runs"])


class TestRenderOrderingAndVerdict:
    def test_worst_first_and_fail_verdict(self, doc):
        text = compare(doc, regress(doc)).render()
        body = text.splitlines()
        deltas = [ln for ln in body if ln.lstrip().startswith("[")]
        # Severity-sorted: every REGRESSED line precedes every other status.
        last_reg = max(i for i, ln in enumerate(deltas) if "REGRESSED" in ln)
        first_other = min(
            (i for i, ln in enumerate(deltas) if "REGRESSED" not in ln),
            default=len(deltas),
        )
        assert last_reg < first_other
        assert "per-group (worst first):" in text
        assert any("model" in ln and "[gated]" in ln for ln in body)
        assert body[-1].startswith("verdict: FAIL — ")
        assert "gated groups" in body[-1] and "model" in body[-1]

    def test_ok_verdict_counts_warn_only_deviations(self, doc):
        assert compare(doc, doc).render().splitlines()[-1] == (
            "verdict: OK — no regressions beyond tolerance"
        )
        bad = copy.deepcopy(doc)
        for run in bad["runs"]:
            imb = run.get("rankprof", {}).get("imbalance")
            if imb:
                imb["max_mean"] *= 2.0
        report = compare(doc, bad)
        assert report.ok and report.warnings
        text = report.render()
        assert "(warn-only)" in text
        assert "imbalance" in text
        assert text.splitlines()[-1].startswith("verdict: OK — ")
        assert "warn-only deviation(s)" in text.splitlines()[-1]

    def test_imbalance_never_gates_the_exit_code(self, doc, tmp_path):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        bad = copy.deepcopy(doc)
        for run in bad["runs"]:
            imb = run.get("rankprof", {}).get("imbalance")
            if imb:
                imb["max_mean"] *= 2.0
                imb["p99_p50"] *= 2.0
        base.write_text(json.dumps(doc))
        cand.write_text(json.dumps(bad))
        assert bench.main(["compare", str(base), str(cand)]) == 0

    def test_legacy_baseline_without_rankprof_still_compares(self, doc):
        legacy = copy.deepcopy(doc)
        for run in legacy["runs"]:
            run.pop("rankprof", None)
        report = compare(legacy, doc)
        assert report.ok
        assert not any(e.group == "imbalance" for e in report.entries)

    def test_runs_embed_validating_rankprof(self, doc):
        from repro.obs.rankprof import bench_record  # noqa: F401 - same shape

        for run in doc["runs"]:
            rp = run["rankprof"]
            assert rp["phase"] == "forward"
            for row in rp["ranks"]:
                assert sum(row["attribution"].values()) == pytest.approx(
                    row["completion"], rel=1e-9
                )


class TestWarnOnlyExitContract:
    """The `bench compare --warn-only` exit-code contract, pinned.

    Findings from *info-mode* groups (wall medians, per-rank imbalance)
    are advisory: they must never turn the exit code nonzero, with or
    without the flag.  Findings from *gated* groups (model times,
    traffic, fig13 speedups) always exit 1 — `--warn-only` is the only
    thing that downgrades them, and it must say so out loud.  Usage and
    IO errors stay exit 2 regardless.
    """

    @staticmethod
    def _paths(tmp_path, doc, bad):
        base = tmp_path / "base.json"
        cand = tmp_path / "cand.json"
        base.write_text(json.dumps(doc))
        cand.write_text(json.dumps(bad))
        return str(base), str(cand)

    def test_info_only_deviations_exit_zero_without_the_flag(
        self, doc, tmp_path, capsys
    ):
        bad = copy.deepcopy(doc)
        for run in bad["runs"]:
            for stats in [*run["wall"]["stages"].values(), run["wall"]["total"]]:
                for k in ("min", "max", "mean", "median"):
                    stats[k] *= 4.0
            imb = run.get("rankprof", {}).get("imbalance")
            if imb:
                imb["max_mean"] *= 3.0
                imb["p99_p50"] *= 3.0
        base, cand = self._paths(tmp_path, doc, bad)
        assert bench.main(["compare", base, cand]) == 0
        out = capsys.readouterr().out
        assert "FAIL" not in out
        assert "verdict: OK" in out

    def test_gated_regression_always_exits_one(self, doc, tmp_path):
        base, cand = self._paths(tmp_path, doc, regress(doc))
        assert bench.main(["compare", base, cand]) == 1

    def test_warn_only_downgrades_gated_to_zero_with_warning(
        self, doc, tmp_path, capsys
    ):
        base, cand = self._paths(tmp_path, doc, regress(doc))
        assert bench.main(["compare", base, cand, "--warn-only"]) == 0
        out = capsys.readouterr().out
        assert "WARN: regressions found (ignored: --warn-only)" in out
        # The report still SAYS the verdict is FAIL; the gate line (and
        # the exit code) are what --warn-only downgrades.
        assert "FAIL: perf regression beyond tolerance" not in out

    def test_warn_only_with_info_deviations_also_exits_zero(
        self, doc, tmp_path
    ):
        bad = copy.deepcopy(doc)
        for run in bad["runs"]:
            for stats in [*run["wall"]["stages"].values(), run["wall"]["total"]]:
                for k in ("min", "max", "mean", "median"):
                    stats[k] *= 4.0
        base, cand = self._paths(tmp_path, doc, bad)
        assert bench.main(["compare", base, cand, "--warn-only"]) == 0

    def test_warn_only_does_not_mask_usage_errors(self, doc, tmp_path):
        base, cand = self._paths(tmp_path, doc, doc)
        missing = str(tmp_path / "gone.json")
        assert bench.main(["compare", missing, cand, "--warn-only"]) == 2
        assert bench.main(
            ["compare", base, cand, "--warn-only", "--tol", "bogus=1"]
        ) == 2
