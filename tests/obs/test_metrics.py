"""Metrics registry tests: instruments, labels, histograms, rendering."""

import math

import pytest

from repro.obs.metrics import (
    HOP_BUCKETS,
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
)


class TestCounter:
    def test_accumulates(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("n").inc(-1)

    def test_render(self):
        c = Counter("msgs", {"phase": "forward"})
        c.inc(4)
        assert c.render() == "msgs{phase=forward} 4"


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("balance")
        g.set(1.5)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("hops", {}, HOP_BUCKETS)
        for v in (1, 1, 2, 3, 100):
            h.observe(v)
        counts = dict(h.bucket_counts())
        assert counts[1.0] == 2
        assert counts[2.0] == 1
        assert counts[3.0] == 1
        assert counts[math.inf] == 1
        assert h.count == 5
        assert h.mean == pytest.approx(107 / 5)

    def test_boundary_is_inclusive(self):
        h = Histogram("x", {}, (10.0, 20.0))
        h.observe(10.0)
        assert dict(h.bucket_counts())[10.0] == 1

    def test_empty_mean_is_zero(self):
        assert Histogram("x", {}, (1.0,)).mean == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", {}, (2.0, 1.0))

    def test_no_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("x", {}, ())


class TestHistogramPercentile:
    def test_empty_returns_nan_consistently(self):
        h = Histogram("x", {}, (1.0, 2.0))
        for q in (0.0, 50.0, 99.0, 100.0):
            assert math.isnan(h.percentile(q))

    def test_out_of_range_q_rejected(self):
        h = Histogram("x", {}, (1.0,))
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(100.5)

    def test_interpolates_within_bucket(self):
        # 10 samples all landing in (0, 100]: median interpolates to 50.
        h = Histogram("x", {}, (100.0, 200.0))
        for _ in range(10):
            h.observe(42.0)
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(100) == pytest.approx(100.0)

    def test_crosses_buckets(self):
        h = Histogram("x", {}, (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.5):
            h.observe(v)
        # p25 tops out the first bucket, p75 lands inside (2, 4].
        assert h.percentile(25) == pytest.approx(1.0)
        assert 2.0 < h.percentile(75) <= 4.0

    def test_overflow_bucket_clamps_to_last_bound(self):
        h = Histogram("x", {}, (1.0, 2.0))
        h.observe(1000.0)
        assert h.percentile(99) == 2.0


class TestRegistry:
    def test_create_on_first_use_returns_same_instrument(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.histogram("h", buckets=(1.0,)) is r.histogram("h")

    def test_labels_distinguish_instruments(self):
        r = MetricsRegistry()
        r.counter("msgs", phase="border").inc()
        r.counter("msgs", phase="forward").inc(2)
        assert r.value("msgs", phase="border") == 1
        assert r.value("msgs", phase="forward") == 2
        assert len(r.find("msgs")) == 2

    def test_value_default_when_absent(self):
        assert MetricsRegistry().value("nope", default=-1.0) == -1.0

    def test_render_lists_scalars_then_histograms(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.histogram("h", buckets=(1.0,)).observe(0.5)
        text = r.render()
        assert text.index("c 1") < text.index("h count=1")
        assert "<=+Inf:0" in text

    def test_render_empty(self):
        assert "(no metrics recorded)" in MetricsRegistry().render()

    def test_reset_drops_instruments(self):
        r = MetricsRegistry()
        r.counter("c").inc()
        r.reset()
        assert r.find("c") == []


class TestCollecting:
    def test_enables_and_restores_global_registry(self):
        assert not METRICS.enabled
        with collecting() as reg:
            assert reg is METRICS and reg.enabled
            reg.counter("seen").inc()
        assert not METRICS.enabled
        assert METRICS.value("seen") == 1  # records survive the block
