"""Tracer tests: nesting discipline, bit-exact durations, real runs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import LennardJones, Simulation, SimulationConfig
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.md.stages import Stage
from repro.obs.trace import MODEL, WALL, Tracer, tracing

EPS = 1e-9

# Arbitrary nesting shapes: a tree is a tuple of child trees.
TREES = st.recursive(
    st.just(()), lambda ch: st.lists(ch, min_size=1, max_size=3).map(tuple), max_leaves=10
)


def open_tree(tracer, tree, prefix="s"):
    """Open one span per tree node, children strictly inside the parent."""
    for i, child in enumerate(tree):
        name = f"{prefix}.{i}"
        with tracer.span(name, cat="test"):
            open_tree(tracer, child, name)


class TestNesting:
    @settings(max_examples=30, deadline=None)
    @given(tree=TREES)
    def test_children_contained_in_parents(self, tree):
        tracer = Tracer(enabled=True)
        with tracer.span("root", cat="test"):
            open_tree(tracer, tree)
        by_id = {s.id: s for s in tracer.spans}
        assert len(tracer.spans) >= 1
        for s in tracer.spans:
            assert s.dur >= 0
            if s.parent is None:
                continue
            parent = by_id[s.parent]
            # The child opened after and closed before its parent.
            assert s.ts >= parent.ts - EPS
            assert s.end <= parent.end + EPS

    @settings(max_examples=30, deadline=None)
    @given(tree=TREES)
    def test_single_root_when_wrapped(self, tree):
        tracer = Tracer(enabled=True)
        with tracer.span("root", cat="test"):
            open_tree(tracer, tree)
        roots = [s for s in tracer.spans if s.parent is None]
        assert [s.name for s in roots] == ["root"]

    def test_parent_ids_follow_the_stack(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent == outer.id
        names = {s.name: s for s in tracer.spans}
        assert names["inner"].parent == names["outer"].id
        assert names["outer"].parent is None


class TestDisabled:
    def test_disabled_span_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("ghost", cat="test"):
            pass
        tracer.instant("ev")
        tracer.add_wall_span("w", 0.0, 1.0)
        tracer.add_model_span("m", 0.0, 1.0)
        assert tracer.spans == []
        assert tracer.instants == []

    def test_disabled_span_is_shared_null_object(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is tracer.span("b")

    def test_tracing_context_restores_state(self):
        from repro.obs.trace import TRACER

        assert not TRACER.enabled
        with tracing() as tr:
            assert tr is TRACER and tr.enabled
        assert not TRACER.enabled


class TestRecording:
    def test_wall_span_duration_is_exact_difference(self):
        tracer = Tracer(enabled=True)
        t0, t1 = 1.25, 7.75
        tracer.add_wall_span("x", t0, t1, cat="stage")
        assert tracer.spans[0].dur == t1 - t0
        assert tracer.spans[0].clock == WALL

    def test_model_clock_high_water_mark(self):
        tracer = Tracer(enabled=True)
        tracer.add_model_span("a", 0.0, 2.0)
        tracer.add_model_span("b", 0.5, 1.0)  # inside: cursor unchanged
        assert tracer.model_clock == 2.0
        tracer.model_span_seq("c", 3.0)
        assert tracer.model_clock == 5.0
        assert tracer.spans[-1].ts == 2.0

    def test_begin_model_round_offsets(self):
        tracer = Tracer(enabled=True)
        tracer.model_span_seq("a", 1.0)
        base = tracer.begin_model_round()
        assert base == 1.0 == tracer.model_offset

    def test_queries_filter(self):
        tracer = Tracer(enabled=True)
        tracer.add_wall_span("w", 0.0, 1.0, cat="stage")
        tracer.add_model_span("m", 0.0, 1.0, cat="stage")
        tracer.instant("i", cat="msg")
        assert [s.name for s in tracer.spans_with("stage", WALL)] == ["w"]
        assert [s.name for s in tracer.spans_with("stage", MODEL)] == ["m"]
        assert [e.name for e in tracer.instants_with("msg")] == ["i"]


class TestRealRun:
    def run_sim(self, steps=8):
        edge = lj_density_to_cell(0.8442)
        x, box = fcc_lattice((4, 4, 4), edge)
        v = maxwell_velocities(x.shape[0], 1.44, seed=3)
        cfg = SimulationConfig(
            pattern="parallel-p2p", neighbor_every=4, model_machine_time=True
        )
        with tracing() as tracer:
            sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
            sim.run(steps)
        return sim, tracer

    def test_stage_span_sums_equal_timers_exactly(self):
        sim, tracer = self.run_sim()
        sums = {s.value: 0.0 for s in Stage}
        for span in tracer.spans_with("stage", WALL):
            sums[span.name] += span.dur
        for stage in Stage:
            # Bit-exact: spans carry the same measured floats, summed in
            # the same order the timers accumulated them.
            assert sums[stage.value] == sim.timers.wall[stage]

    def test_model_span_sums_equal_model_timers(self):
        sim, tracer = self.run_sim()
        assert sim.timers.total_model() > 0
        sums = {s.value: 0.0 for s in Stage}
        for span in tracer.spans_with("stage", MODEL):
            sums[span.name] += span.dur
        for stage in Stage:
            assert sums[stage.value] == sim.timers.model[stage]

    def test_step_spans_cover_the_run(self):
        sim, tracer = self.run_sim(steps=5)
        steps = [s for s in tracer.spans_with("step", WALL) if s.name.startswith("step")]
        assert [s.name for s in steps] == [f"step {i}" for i in range(1, 6)]
        assert any(s.name == "setup" for s in tracer.spans_with("step", WALL))

    def test_stage_spans_nest_inside_steps(self):
        _, tracer = self.run_sim(steps=3)
        by_id = {s.id: s for s in tracer.spans}
        stage_spans = tracer.spans_with("stage", WALL)
        assert stage_spans
        for s in stage_spans:
            assert s.parent is not None
            assert by_id[s.parent].cat in ("step", "comm")
