"""Per-rank profiler: exactness, imbalance stats, artifact, telemetry feed."""

import copy
import math

import pytest

from repro.core.modeling import modeled_exchange_time
from repro.obs import observe
from repro.obs.bench import BenchConfig, build_simulation
from repro.obs.critpath import analyze_critical_path
from repro.obs.rankprof import (
    PROFILE_PHASES,
    SCHEMA,
    RankProfileResult,
    bench_record,
    feed_telemetry,
    profile_exchange,
    rank_percentile,
    render_rank_profile,
    to_dict,
    validate_rankprof_doc,
)
from repro.obs.telemetry import TELEMETRY, StepTelemetry


@pytest.fixture(scope="module")
def sim():
    s = build_simulation(BenchConfig("lj", "parallel-p2p", (2, 2, 2), rdma=True))
    s.run(2)
    return s


@pytest.fixture(scope="module")
def prof(sim):
    return profile_exchange(sim.exchange, phases=("forward", "reverse"))


class TestRankPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(rank_percentile([], 0.5))

    def test_rank_convention_matches_sketch(self):
        # 1-based rank max(1, ceil(q*n)) of the sorted list.
        vals = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert rank_percentile(vals, 0.0) == 1.0
        assert rank_percentile(vals, 0.5) == 3.0
        assert rank_percentile(vals, 0.99) == 5.0
        assert rank_percentile(vals, 1.0) == 5.0

    def test_out_of_range_raises_even_when_empty(self):
        with pytest.raises(ValueError):
            rank_percentile([], 1.5)
        with pytest.raises(ValueError):
            rank_percentile([1.0], -0.1)


class TestProfile:
    def test_covers_every_rank_and_phase(self, sim, prof):
        ranks = sim.exchange.world.size
        assert prof.ranks == ranks
        assert len(prof.profiles) == ranks * 2
        for phase in ("forward", "reverse"):
            assert [p.rank for p in prof.by_phase(phase)] == list(range(ranks))

    def test_attribution_partitions_each_rank_exactly(self, prof):
        for p in prof.profiles:
            assert sum(p.attribution.values()) == pytest.approx(
                p.completion, rel=1e-9
            )

    def test_completion_equals_untraced_model_bit_exactly(self, sim, prof):
        # Traced profiling bypasses the plan-epoch cache but replays the
        # exact same schedule: the scalar must match to the last bit.
        for p in prof.by_phase("forward"):
            assert p.completion == modeled_exchange_time(
                sim.exchange, "forward", rank=p.rank
            )

    def test_rank0_row_is_the_whole_run_attribution(self, sim, prof):
        with observe(metrics=False) as (tracer, _):
            modeled_exchange_time(sim.exchange, "forward", rank=0)
        cp = analyze_critical_path(tracer)
        row = prof.by_phase("forward")[0]
        assert row.attribution == dict(cp.attribution)
        assert row.completion == cp.completion - cp.base

    def test_unknown_phase_rejected(self, sim):
        with pytest.raises(ValueError, match="unknown phase"):
            profile_exchange(sim.exchange, phases=("sideways",))
        assert "sideways" not in PROFILE_PHASES

    def test_top_category_is_an_attribution_key(self, prof):
        for p in prof.profiles:
            assert p.top_category in p.attribution
            assert p.attribution[p.top_category] == max(p.attribution.values())

    def test_evidence_is_span_anchored(self, prof):
        for p in prof.profiles:
            ev = p.evidence
            assert {"name", "cat", "track", "start", "end", "dur"} <= set(ev)
            assert ev["end"] - ev["start"] == pytest.approx(ev["dur"], abs=0)


class TestImbalance:
    def test_ratios_are_well_formed(self, prof):
        imb = prof.imbalance("forward")
        assert imb.max >= imb.mean >= imb.min > 0
        assert imb.max_mean >= 1.0
        assert imb.p99_p50 >= 1.0
        assert all(0 <= r < prof.ranks for r in imb.stragglers)

    def test_stragglers_exceed_the_margin(self, prof):
        imb = prof.imbalance("forward")
        times = prof.completions("forward")
        cut = rank_percentile(times, 0.5) * (1.0 + prof.straggler_margin)
        for rank, t in enumerate(times):
            assert (rank in imb.stragglers) == (t > cut)

    def test_empty_phase_is_all_nan(self):
        empty = RankProfileResult(pattern="p2p", ranks=0, phases=("border",))
        imb = empty.imbalance("border")
        assert math.isnan(imb.mean) and math.isnan(imb.max_mean)
        assert imb.stragglers == ()

    def test_categories_sum_over_ranks(self, prof):
        cats = prof.categories("forward")
        total = sum(p.completion for p in prof.by_phase("forward"))
        assert sum(cats.values()) == pytest.approx(total, rel=1e-9)


class TestArtifact:
    def test_round_trip_validates(self, prof):
        doc = to_dict(prof, label="unit")
        assert doc["schema"] == SCHEMA
        assert validate_rankprof_doc(doc) == len(prof.profiles)

    def test_rejects_wrong_schema(self, prof):
        bad = copy.deepcopy(to_dict(prof))
        bad["schema"] = "repro-rankprof/0"
        with pytest.raises(ValueError, match=r"\$\.schema"):
            validate_rankprof_doc(bad)

    def test_rejects_duplicate_rank(self, prof):
        bad = copy.deepcopy(to_dict(prof))
        rows = bad["phases"]["forward"]["rows"]
        rows[1]["rank"] = rows[0]["rank"]
        with pytest.raises(ValueError, match="duplicate rank"):
            validate_rankprof_doc(bad)

    def test_rejects_broken_partition(self, prof):
        bad = copy.deepcopy(to_dict(prof))
        row = bad["phases"]["forward"]["rows"][0]
        row["attribution"]["wire"] = row["attribution"].get("wire", 0.0) + 1.0
        with pytest.raises(ValueError, match="not completion"):
            validate_rankprof_doc(bad)

    def test_bench_record_shape(self, prof):
        rec = bench_record(prof)
        assert rec["phase"] == "forward"
        assert len(rec["ranks"]) == prof.ranks
        assert {"max_mean", "p99_p50", "stragglers"} <= set(rec["imbalance"])
        for row in rec["ranks"]:
            assert sum(row["attribution"].values()) == pytest.approx(
                row["completion"], rel=1e-9
            )

    def test_render_lists_every_rank(self, prof):
        text = render_rank_profile(prof)
        assert "per-rank exchange profile" in text
        assert "[forward]" in text and "[reverse]" in text
        for rank in range(prof.ranks):
            assert f"\n{rank:>5} |" in text


class TestFeedTelemetry:
    def test_samples_land_in_per_rank_sketches(self, prof):
        t = StepTelemetry()
        n = feed_telemetry(prof, telemetry=t)
        expected = len(prof.profiles) + sum(
            len(p.attribution) for p in prof.profiles
        )
        assert n == expected
        row = prof.by_phase("forward")[0]
        sk = t.sketch("rank_exchange_seconds", phase="forward", rank=0)
        assert sk is not None and sk.count == 1
        assert sk.total == row.completion
        cat = row.top_category
        assert t.sketch(
            "rank_critpath_seconds", phase="forward", rank=0, category=cat
        ).total == row.attribution[cat]

    def test_no_attached_telemetry_is_a_noop(self, prof):
        with TELEMETRY.disabled():
            assert feed_telemetry(prof) == 0

    def test_feeds_the_attached_default(self, prof):
        with TELEMETRY.scope():
            t = StepTelemetry()
            TELEMETRY.attach(t)
            assert feed_telemetry(prof) > 0
            assert t.sketch("rank_exchange_seconds", phase="forward", rank=0)
