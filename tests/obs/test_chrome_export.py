"""Chrome trace-event export and schema-validator tests."""

import json

import pytest

from repro.cli import main
from repro.obs.export import (
    chrome_trace_events,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def small_trace():
    tracer = Tracer(enabled=True)
    epoch = tracer._epoch
    with tracer.span("step 1", cat="step", track="run"):
        tracer.add_wall_span("Pair", epoch, epoch + 0.25, cat="stage", track="stages")
        tracer.instant("msg", cat="msg", track="rank0", src=0, dst=1, nbytes=96)
    tracer.add_model_span("wire", 0.0, 1e-6, cat="wire", track="tni0")
    registry = MetricsRegistry(enabled=True)
    registry.counter("messages_total", phase="forward").inc(3)
    return tracer, registry


class TestExport:
    def test_two_processes_with_names(self):
        doc = chrome_trace_events(*small_trace())
        meta = {
            (e["pid"], e["args"]["name"])
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert meta == {(1, "wall clock"), (2, "simulated machine")}

    def test_tracks_become_named_threads(self):
        doc = chrome_trace_events(*small_trace())
        names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"run", "stages", "rank0", "tni0"} <= names

    def test_spans_are_complete_events_in_microseconds(self):
        doc = chrome_trace_events(*small_trace())
        pair = next(e for e in doc["traceEvents"] if e["name"] == "Pair")
        assert pair["ph"] == "X"
        assert pair["pid"] == 1
        assert pair["dur"] == pytest.approx(0.25e6)

    def test_model_spans_land_on_pid_2(self):
        doc = chrome_trace_events(*small_trace())
        wire = next(e for e in doc["traceEvents"] if e["name"] == "wire")
        assert wire["pid"] == 2
        assert wire["dur"] == pytest.approx(1.0)

    def test_metrics_ride_along_as_counter_events(self):
        doc = chrome_trace_events(*small_trace())
        c = next(e for e in doc["traceEvents"] if e["ph"] == "C")
        assert c["name"] == "messages_total"
        assert c["args"]["messages_total"] == 3

    def test_roundtrip_file_validates(self, tmp_path):
        tracer, registry = small_trace()
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), tracer, registry)
        assert validate_chrome_trace_file(str(path)) == len(doc["traceEvents"])


class TestValidator:
    def test_accepts_generated_document(self):
        doc = chrome_trace_events(*small_trace())
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="object"):
            validate_chrome_trace([])

    def test_rejects_missing_events_array(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})

    def test_rejects_unknown_phase(self):
        doc = {"traceEvents": [{"ph": "Z", "name": "x"}]}
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(doc)

    def test_rejects_empty_name(self):
        doc = {"traceEvents": [{"ph": "M", "name": ""}]}
        with pytest.raises(ValueError, match="name"):
            validate_chrome_trace(doc)

    def test_rejects_negative_duration(self):
        doc = {"traceEvents": [{"ph": "X", "name": "x", "ts": 0.0, "dur": -1.0}]}
        with pytest.raises(ValueError, match="dur"):
            validate_chrome_trace(doc)

    def test_rejects_nan_timestamp(self):
        doc = {"traceEvents": [{"ph": "i", "name": "x", "ts": float("nan")}]}
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(doc)

    def test_rejects_non_integer_pid(self):
        doc = {"traceEvents": [{"ph": "M", "name": "x", "pid": "one"}]}
        with pytest.raises(ValueError, match="pid"):
            validate_chrome_trace(doc)


class TestCliSmoke:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        path = tmp_path / "run.json"
        rc = main(
            [
                "--potential", "lj", "--atoms", "256", "--ranks", "2", "2", "2",
                "--pattern", "parallel-p2p", "--steps", "3",
                "--trace", str(path), "--metrics",
            ]
        )
        assert rc == 0
        assert validate_chrome_trace_file(str(path)) > 0
        out = capsys.readouterr().out
        assert "Span-derived stage breakdown" in out
        assert "metrics report:" in out
        doc = json.loads(path.read_text())
        phases = {e["args"].get("phase") for e in doc["traceEvents"] if e["ph"] == "i"}
        assert "forward" in phases
