"""Three-way consistency: trace vs TrafficLog vs Table 1 analytics.

The observability tentpole's acceptance test: the per-message instants
recorded by the tracer, the :class:`TrafficLog` ground truth, and the
paper's Table 1 formulas must all tell the same story about how many
messages moved and (approximately) how many bytes.
"""

import numpy as np
import pytest

from repro import LennardJones, Simulation, SimulationConfig
from repro.core.analytic import analyze_p2p, analyze_three_stage
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.md.stages import Stage
from repro.obs import observe
from repro.obs.trace import Tracer
from repro.obs.report import (
    phase_summary_from_trace,
    render_phase_table,
    stage_breakdown_from_trace,
    write_stage_csv,
)

STEPS = 10


def traced_run(pattern):
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice((4, 4, 4), edge)
    v = maxwell_velocities(x.shape[0], 1.44, seed=11)
    cfg = SimulationConfig(pattern=pattern, neighbor_every=5)
    with observe(metrics=False) as (tracer, _):
        sim = Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 2, 2))
        sim.run(STEPS)
    # Detach the records from the global singleton so a later reset
    # (another observe block) cannot invalidate this fixture value.
    snapshot = Tracer()
    snapshot.spans = list(tracer.spans)
    snapshot.instants = list(tracer.instants)
    return sim, snapshot


def analysis_for(sim):
    a = float(np.min(sim.domain.sub_lengths))
    r = sim.potential.cutoff + sim.config.skin
    density = sim.natoms / sim.box.volume
    if sim.config.pattern == "3stage":
        return analyze_three_stage(a, r, density)
    return analyze_p2p(a, r, density, newton=sim.half)


@pytest.fixture(scope="module", params=["3stage", "parallel-p2p"])
def run(request):
    return traced_run(request.param)


class TestTraceVsTrafficLog:
    def test_same_phases(self, run):
        sim, tracer = run
        log_phases = {m.phase for m in sim.world.transport.log.messages}
        assert set(phase_summary_from_trace(tracer)) == log_phases

    def test_counts_and_bytes_exact(self, run):
        sim, tracer = run
        log = sim.world.transport.log
        for phase, t in phase_summary_from_trace(tracer).items():
            s = log.summary(phase)
            assert (t.count, t.total_bytes) == (s.count, s.total_bytes), phase


class TestTraceVsTable1:
    def test_forward_message_count_matches_formula(self, run):
        sim, tracer = run
        analysis = analysis_for(sim)
        expected_per_rank = 6 if sim.config.pattern == "3stage" else 13
        assert analysis.total_messages == expected_per_rank
        n_forward = sim.step_count - sim.rebuilds
        measured = phase_summary_from_trace(tracer)["forward"].count
        assert measured == analysis.total_messages * sim.world.size * n_forward

    def test_forward_bytes_near_analytic_volume(self, run):
        sim, tracer = run
        analysis = analysis_for(sim)
        n_forward = sim.step_count - sim.rebuilds
        predicted = analysis.total_bytes * sim.world.size * n_forward
        measured = phase_summary_from_trace(tracer)["forward"].total_bytes
        # The analytic volumes are density estimates of shell populations,
        # and bin-granular border selection ships whole bins that intersect
        # the shell — a systematic overshoot at small sub-box sizes.
        assert measured == pytest.approx(predicted, rel=0.25)


class TestTraceVsStageTimers:
    def test_breakdown_bit_exact(self, run):
        sim, tracer = run
        derived = stage_breakdown_from_trace(tracer, "wall")
        for stage in Stage:
            assert derived[stage.value] == sim.timers.wall[stage]

    def test_breakdown_rejects_bad_account(self, run):
        _, tracer = run
        with pytest.raises(ValueError):
            stage_breakdown_from_trace(tracer, "cpu")


class TestRenderers:
    def test_phase_table_lists_all_phases(self, run):
        _, tracer = run
        table = render_phase_table(tracer)
        for phase in ("border", "forward", "reverse", "exchange"):
            assert phase in table

    def test_stage_csv_roundtrip(self, run, tmp_path):
        sim, tracer = run
        path = tmp_path / "stages.csv"
        write_stage_csv(str(path), tracer)
        rows = path.read_text().strip().splitlines()
        assert rows[0] == "stage,wall_seconds,model_seconds"
        assert len(rows) == 1 + len(Stage)
        wall = {r.split(",")[0]: float(r.split(",")[1]) for r in rows[1:]}
        for stage in Stage:
            assert wall[stage.value] == pytest.approx(sim.timers.wall[stage])

    def test_phase_csv_matches_traffic_log(self, run, tmp_path):
        from repro.obs.report import write_phase_csv

        sim, tracer = run
        path = tmp_path / "phases.csv"
        write_phase_csv(str(path), tracer)
        rows = path.read_text().strip().splitlines()
        assert rows[0] == "phase,messages,bytes"
        log = sim.world.transport.log
        parsed = {r.split(",")[0]: r.split(",")[1:] for r in rows[1:]}
        assert set(parsed) == {m.phase for m in log.messages}
        for phase, (count, nbytes) in parsed.items():
            s = log.summary(phase)
            assert (int(count), int(nbytes)) == (s.count, s.total_bytes)
