"""OpenMetrics exposition: label escaping, atomic rewrite, stability."""

import threading

from repro import LennardJones, Simulation, SimulationConfig
from repro.md.lattice import fcc_lattice, lj_density_to_cell, maxwell_velocities
from repro.obs.telemetry import TELEMETRY, StepTelemetry, write_textfile


def build_sim():
    edge = lj_density_to_cell(0.8442)
    x, box = fcc_lattice((4, 2, 2), edge)
    v = maxwell_velocities(len(x), 1.44, seed=11)
    cfg = SimulationConfig(
        dt=0.005, skin=0.3, pattern="parallel-p2p", rdma=False, neighbor_every=4
    )
    return Simulation(x, v, box, LennardJones(cutoff=2.5), cfg, grid=(2, 1, 1))


class TestLabelEscaping:
    def test_backslash_quote_and_newline(self):
        t = StepTelemetry()
        t.counter_add("weird_total", 1.0, path="a\\b", msg='say "hi"\nbye')
        text = t.render_openmetrics()
        line = next(
            ln for ln in text.splitlines() if ln.startswith("repro_weird_total{")
        )
        assert r'msg="say \"hi\"\nbye"' in line
        assert r'path="a\\b"' in line
        # The raw newline must never split the series onto two lines.
        assert text.count("repro_weird_total{") == 1

    def test_clean_values_unchanged(self):
        t = StepTelemetry()
        t.gauge_set("pool_bytes", 7.0, pattern="parallel-p2p")
        assert 'repro_pool_bytes{pattern="parallel-p2p"} 7' in t.render_openmetrics()

    def test_escaped_exposition_stays_parseable(self):
        # Every non-comment line is `name{labels} value`: one unescaped
        # opening brace, a closing brace, then a float.
        t = StepTelemetry()
        t.counter_add("x_total", 2.0, k='a"b\\c\nd')
        t.observe("y_seconds", 0.5, k="plain")
        for ln in t.render_openmetrics().splitlines():
            if ln.startswith("#"):
                continue
            name, rest = ln.split("{", 1)
            labels, value = rest.rsplit("} ", 1)
            assert name.startswith("repro_")
            float(value)
            assert "\n" not in labels


class TestAtomicTextfile:
    def test_writes_and_terminates(self, tmp_path):
        path = tmp_path / "node.prom"
        t = StepTelemetry()
        t.counter_add("c_total", 1.0)
        write_textfile(str(path), t.render_openmetrics())
        body = path.read_text()
        assert body.endswith("# EOF\n")
        # The temp sibling must be renamed away, not left behind.
        assert [p.name for p in tmp_path.iterdir()] == ["node.prom"]

    def test_concurrent_readers_never_see_a_partial_file(self, tmp_path):
        path = tmp_path / "node.prom"
        payloads = []
        for tag in ("alpha", "beta"):
            t = StepTelemetry()
            t.counter_add("c_total", 1.0, tag=tag)
            t.counter_add("pad_total", 1.0, pad="x" * 4096)
            payloads.append(t.render_openmetrics())
        write_textfile(str(path), payloads[0])

        stop = threading.Event()
        def writer():
            i = 0
            while not stop.is_set():
                write_textfile(str(path), payloads[i % 2])
                i += 1
        th = threading.Thread(target=writer)
        th.start()
        try:
            seen = set()
            for _ in range(500):
                body = path.read_text()
                # Atomic rename: a read observes exactly one whole
                # exposition, never a torn or truncated mix.
                assert body in payloads
                seen.add(payloads.index(body))
        finally:
            stop.set()
            th.join()
        assert 0 in seen  # the loop really read something


class TestSnapshotStability:
    def test_export_does_not_perturb_state(self):
        with TELEMETRY.scope():
            sim = build_sim()
            sim.run(3)
            t = TELEMETRY.active
            assert t is not None
            snap = t.snapshot()
            r1 = t.render_openmetrics()
            r2 = t.render_openmetrics()
            assert r1 == r2
            assert t.snapshot() == snap

    def test_flushes_only_grow_the_series(self):
        with TELEMETRY.scope():
            sim = build_sim()
            sim.run(3)
            t = TELEMETRY.active
            before = t.snapshot()
            sim.run(3)
            after = t.snapshot()
            assert set(before["counters"]) <= set(after["counters"])
            assert set(before["sketches"]) <= set(after["sketches"])
            for key, v in before["counters"].items():
                assert after["counters"][key] >= v
            for key, sk in before["sketches"].items():
                assert after["sketches"][key]["count"] >= sk["count"]
