"""Flight recorder: ring bounds, dump/replay round-trip, auto-dump."""

import json

import pytest

from repro.obs.flight import (
    SCHEMA,
    FlightRecorder,
    load_flight_doc,
    validate_flight_doc,
)


def frame(step, wall=None, model=None, **extra):
    return {
        "step": step,
        "wall": wall or {"Comm": 0.001 * step},
        "model": model or {},
        **extra,
    }


class TestRings:
    def test_frames_bounded(self):
        rec = FlightRecorder(max_steps=4)
        for s in range(1, 11):
            rec.record_frame(frame(s))
        assert [f["step"] for f in rec.frames] == [7, 8, 9, 10]
        assert rec.frames_seen == 10

    def test_events_bounded_with_running_seq(self):
        rec = FlightRecorder(max_events=3)
        for i in range(7):
            rec.record_event("retry", attempt=i)
        assert [e["seq"] for e in rec.events] == [4, 5, 6]
        assert rec.events_seen == 7

    def test_events_stamped_with_current_step(self):
        rec = FlightRecorder()
        rec.record_frame(frame(5))
        rec.record_event("degradation")
        assert rec.events[-1]["step"] == 5

    def test_frame_requires_step(self):
        with pytest.raises(ValueError):
            FlightRecorder().record_frame({"wall": {}})

    def test_event_fields_cannot_shadow_envelope(self):
        rec = FlightRecorder()
        # "kind" collides with the positional parameter itself ...
        with pytest.raises(TypeError):
            rec.record_event("fault-injected", kind="drop")
        # ... and the envelope guard rejects the stamped keys.
        with pytest.raises(ValueError):
            rec.record_event("fault-injected", seq=7)
        with pytest.raises(ValueError):
            rec.record_event("fault-injected", step=3)

    def test_rejects_empty_rings(self):
        with pytest.raises(ValueError):
            FlightRecorder(max_steps=0)

    def test_clear_keeps_totals(self):
        rec = FlightRecorder()
        rec.record_frame(frame(1))
        rec.record_event("retry")
        rec.clear()
        assert not rec.frames and not rec.events
        assert rec.frames_seen == 1 and rec.events_seen == 1


class TestDumpRoundTrip:
    def build(self):
        rec = FlightRecorder(max_steps=8, max_events=8)
        for s in range(1, 6):
            rec.record_frame(frame(s, model={"Comm": 1e-6 * s}))
            if s % 2:
                rec.record_event("retry", phase="forward")
        rec.record_event("retry-exhausted", rank=0, peer=3)
        return rec

    def test_dump_validates(self):
        doc = self.build().dump("on-demand")
        assert validate_flight_doc(doc) == 5
        assert doc["schema"] == SCHEMA
        assert doc["totals"] == {"frames_seen": 5, "events_seen": 4}

    def test_replay_round_trip_exact(self):
        rec = self.build()
        doc = rec.dump("on-demand", meta={"pattern": "p2p"})
        replay = FlightRecorder.from_doc(doc)
        assert replay.dump("on-demand", meta={"pattern": "p2p"}) == doc

    def test_replay_continues_sequences(self):
        rec = self.build()
        replay = FlightRecorder.from_doc(rec.dump("x"))
        replay.record_event("retry")
        # Sequence numbers keep ascending past the restored tail.
        assert replay.events[-1]["seq"] == rec.events[-1]["seq"] + 1
        assert replay.events[-1]["step"] == 5

    def test_write_and_load(self, tmp_path):
        path = str(tmp_path / "flight.json")
        doc = self.build().write(path, "on-demand")
        loaded = load_flight_doc(path)
        assert loaded == json.loads(json.dumps(doc))  # JSON-stable


class TestValidator:
    def test_rejects_wrong_schema(self):
        doc = FlightRecorder().dump("r")
        doc["schema"] = "repro-flightrec/999"
        with pytest.raises(ValueError, match="schema"):
            validate_flight_doc(doc)

    def test_rejects_empty_reason(self):
        doc = FlightRecorder().dump("r")
        doc["reason"] = ""
        with pytest.raises(ValueError, match="reason"):
            validate_flight_doc(doc)

    def test_rejects_unordered_steps(self):
        rec = FlightRecorder()
        rec.record_frame(frame(2))
        doc = rec.dump("r")
        doc["frames"].append(dict(doc["frames"][0], step=1))
        with pytest.raises(ValueError, match="strictly increasing"):
            validate_flight_doc(doc)

    def test_rejects_negative_stage_seconds(self):
        rec = FlightRecorder()
        rec.record_frame(frame(1, wall={"Comm": -0.1}))
        with pytest.raises(ValueError, match="Comm"):
            validate_flight_doc(rec.dump("r"))

    def test_rejects_overflowing_ring(self):
        rec = FlightRecorder(max_steps=2)
        rec.record_frame(frame(1))
        rec.record_frame(frame(2))
        doc = rec.dump("r")
        doc["frames"].append(frame(3))
        with pytest.raises(ValueError, match="exceed max_steps"):
            validate_flight_doc(doc)

    def test_rejects_out_of_order_events(self):
        rec = FlightRecorder()
        rec.record_event("a")
        rec.record_event("b")
        doc = rec.dump("r")
        doc["events"].reverse()
        with pytest.raises(ValueError, match="out of order"):
            validate_flight_doc(doc)


class TestAutoDump:
    def test_autodump_on_notable_event(self, tmp_path):
        from repro.obs.telemetry import TELEMETRY, StepTelemetry

        path = str(tmp_path / "auto.json")
        telem = StepTelemetry()
        prev = TELEMETRY.autodump_path
        TELEMETRY.autodump_path = path
        try:
            telem.flight.record_frame(frame(1))
            telem.record_event("retry")  # not an auto-dump kind
            assert not (tmp_path / "auto.json").exists()
            telem.record_event("degradation", from_pattern="p2p", to_pattern="3stage")
        finally:
            TELEMETRY.autodump_path = prev
        doc = load_flight_doc(path)
        assert doc["reason"] == "degradation"
        assert [e["kind"] for e in doc["events"]] == ["retry", "degradation"]

    def test_no_autodump_without_path(self):
        from repro.obs.telemetry import TELEMETRY, StepTelemetry

        prev = TELEMETRY.autodump_path
        TELEMETRY.autodump_path = None
        try:
            telem = StepTelemetry()
            telem.record_event("retry-exhausted")  # must not raise or write
        finally:
            TELEMETRY.autodump_path = prev
        assert telem.counter_value("events_total", kind="retry-exhausted") == 1
