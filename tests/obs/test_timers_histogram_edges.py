"""Edge cases of StageTimers.breakdown and Histogram.percentile.

Both fed the fault/bench reporting paths; these regressions pin the
behaviors the harness relies on (empty accounts, single samples, the
+Inf bucket, caller typos).
"""

import math

import pytest

from repro.md.stages import Stage, StageTimers
from repro.obs.metrics import Histogram


class TestStageTimersBreakdown:
    def test_empty_timers_report_zero_percent(self):
        b = StageTimers().breakdown()
        assert set(b) == {s.value for s in Stage}
        assert all(v == (0.0, 0.0) for v in b.values())

    def test_percentages_sum_to_hundred(self):
        t = StageTimers()
        t.wall[Stage.PAIR] = 3.0
        t.wall[Stage.COMM] = 1.0
        b = t.breakdown("wall")
        assert b["Pair"] == (3.0, 75.0)
        assert b["Comm"] == (1.0, 25.0)
        assert sum(pct for _, pct in b.values()) == pytest.approx(100.0)

    def test_model_account_selected_explicitly(self):
        t = StageTimers()
        t.add_model(Stage.COMM, 2.0)
        assert t.breakdown("model")["Comm"] == (2.0, 100.0)
        assert t.breakdown("wall")["Comm"] == (0.0, 0.0)

    def test_unknown_account_is_a_typo(self):
        with pytest.raises(ValueError, match="wall.*model"):
            StageTimers().breakdown("walls")

    def test_negative_model_time_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            StageTimers().add_model(Stage.PAIR, -1.0)

    def test_single_stage_is_all_of_the_run(self):
        t = StageTimers()
        t.wall[Stage.NEIGH] = 0.5
        assert t.breakdown()["Neigh"] == (0.5, 100.0)
        assert t.total_wall() == 0.5


class TestHistogramPercentile:
    def build(self, *samples, buckets=(1.0, 2.0, 4.0)):
        h = Histogram("t", {}, buckets)
        for s in samples:
            h.observe(s)
        return h

    def test_empty_histogram_has_no_percentiles(self):
        h = self.build()
        for q in (0.0, 50.0, 100.0):
            assert math.isnan(h.percentile(q))

    @pytest.mark.parametrize("q", [-1.0, 100.5])
    def test_out_of_range_percentile_rejected(self, q):
        with pytest.raises(ValueError, match="percentile"):
            self.build(1.0).percentile(q)

    def test_single_sample_every_percentile_in_its_bucket(self):
        h = self.build(1.5)  # lands in the (1, 2] bucket
        for q in (1.0, 50.0, 99.0, 100.0):
            assert 1.0 <= h.percentile(q) <= 2.0

    def test_inf_bucket_reports_last_finite_bound(self):
        h = self.build(100.0)  # beyond every bound: +Inf bucket
        assert h.percentile(50.0) == 4.0
        assert h.bucket_counts()[-1] == (math.inf, 1)

    def test_interpolation_within_bucket(self):
        # 4 samples in (0, 1]: p50 interpolates to the bucket midpoint.
        h = self.build(0.5, 0.5, 0.5, 0.5, buckets=(1.0,))
        assert h.percentile(50.0) == pytest.approx(0.5)

    def test_empty_mean_is_zero_not_nan(self):
        assert self.build().mean == 0.0

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError, match="bucket"):
            Histogram("t", {}, ())

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("t", {}, (2.0, 1.0))
