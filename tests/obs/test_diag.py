"""`repro diag`: kind detection, shape classification, ranking, CLI."""

import copy
import json
import math

import pytest

from repro.obs.diag import (
    SCHEMA,
    SHAPES,
    artifact_kind,
    diagnose,
    main,
    render_diag,
    validate_diag_doc,
)

NRANKS = 8


def make_rankprof(completion=1e-4, bump=None):
    """A synthetic but schema-shaped repro-rankprof/1 doc over 8 ranks.

    ``bump`` maps rank -> (category, extra_seconds): those ranks get the
    extra time added to both the category and the completion, keeping
    the partition invariant intact.
    """
    rows = []
    for rank in range(NRANKS):
        attr = {"wire": 0.6 * completion, "inject": 0.3 * completion,
                "idle": 0.1 * completion}
        comp = completion
        if bump and rank in bump:
            cat, extra = bump[rank]
            attr[cat] = attr.get(cat, 0.0) + extra
            comp += extra
        rows.append({
            "rank": rank, "completion": comp, "attribution": attr,
            "messages": 13, "wire_segments": 13, "natoms": 100,
            "top": max(attr, key=attr.get),
            "evidence": {"name": f"msg-{rank}", "cat": "wire",
                         "track": f"rank{rank}/thr0", "start": 0.0,
                         "end": comp, "dur": comp},
        })
    times = [r["completion"] for r in rows]
    mean = sum(times) / len(times)
    return {
        "schema": "repro-rankprof/1", "label": "synthetic", "pattern": "p2p",
        "ranks": NRANKS, "straggler_margin": 0.10,
        "phases": {"forward": {
            "rows": rows,
            "imbalance": {"mean": mean, "min": min(times), "max": max(times),
                          "max_mean": max(times) / mean, "p99_p50": 1.0,
                          "stragglers": sorted(bump) if bump else []},
        }},
    }


class TestArtifactKind:
    def test_schemas(self):
        assert artifact_kind({"schema": "repro-bench/1"}) == "bench"
        assert artifact_kind({"schema": "repro-scaling/1"}) == "scaling"
        assert artifact_kind(make_rankprof()) == "rankprof"
        assert artifact_kind({"traceEvents": []}) == "trace"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unrecognized artifact"):
            artifact_kind({"schema": "repro-mystery/1"})
        with pytest.raises(ValueError):
            artifact_kind([1, 2])

    def test_cross_kind_diag_rejected(self):
        with pytest.raises(ValueError, match="cannot diag across kinds"):
            diagnose(make_rankprof(), {"traceEvents": []})


class TestRankprofDiag:
    def test_identical_docs_have_no_findings(self):
        doc = make_rankprof()
        report = diagnose(doc, copy.deepcopy(doc))
        assert report.findings == []
        assert "no significant deltas" in report.verdict
        assert report.delta == 0.0

    def test_single_rank_fault_bump_is_imbalance_shaped(self):
        old = make_rankprof()
        new = make_rankprof(bump={2: ("fault", 5e-5)})
        report = diagnose(old, new, "clean", "jittered")
        top = report.findings[0]
        assert top.cohort == (2,)
        assert top.category == "fault"
        assert top.shape == "imbalance"
        assert top.stage == "Comm"
        assert top.delta == pytest.approx(5e-5, rel=1e-9)
        assert top.evidence["rank"] == 2

    def test_uniform_wire_growth_is_wire_shaped(self):
        old = make_rankprof()
        new = make_rankprof(
            bump={r: ("wire", 2e-5) for r in range(NRANKS)}
        )
        top = diagnose(old, new).findings[0]
        assert top.shape == "wire"
        assert top.category == "wire"
        assert len(top.cohort) == NRANKS  # everyone moved together

    def test_uniform_barrier_growth_is_overhead_shaped(self):
        old = make_rankprof()
        new = make_rankprof(
            bump={r: ("barrier", 2e-5) for r in range(NRANKS)}
        )
        top = diagnose(old, new).findings[0]
        assert top.shape == "overhead"
        assert top.category == "barrier"

    def test_improvement_keeps_the_sign(self):
        old = make_rankprof(bump={3: ("inject", 4e-5)})
        new = make_rankprof()
        report = diagnose(old, new)
        top = report.findings[0]
        assert top.delta < 0 and report.delta < 0
        assert top.cohort == (3,)
        assert "improved" in report.verdict


class TestReportDoc:
    def test_round_trip_validates(self):
        report = diagnose(make_rankprof(), make_rankprof(bump={2: ("fault", 5e-5)}))
        doc = report.to_dict()
        assert doc["schema"] == SCHEMA
        assert validate_diag_doc(doc) == len(report.findings)
        assert doc["total"]["delta"] == pytest.approx(report.delta)

    def test_shares_sum_to_one(self):
        report = diagnose(make_rankprof(), make_rankprof(bump={1: ("tni", 3e-5)}))
        assert sum(f.share for f in report.findings) == pytest.approx(1.0)

    def test_rejects_bad_shape(self):
        doc = diagnose(make_rankprof(), make_rankprof(bump={2: ("fault", 5e-5)})).to_dict()
        doc["findings"][0]["shape"] = "vibes"
        assert "vibes" not in SHAPES
        with pytest.raises(ValueError, match="shape"):
            validate_diag_doc(doc)

    def test_rejects_unranked_findings(self):
        doc = diagnose(
            make_rankprof(),
            make_rankprof(bump={2: ("fault", 5e-5), 5: ("wire", 1e-5)}),
        ).to_dict()
        assert len(doc["findings"]) >= 1
        doc["findings"].append(dict(doc["findings"][0], delta=1.0))
        with pytest.raises(ValueError, match="ranked"):
            validate_diag_doc(doc)

    def test_rejects_broken_total(self):
        doc = diagnose(make_rankprof(), make_rankprof()).to_dict()
        doc["total"]["delta"] = 1.0
        with pytest.raises(ValueError, match="delta != new - old"):
            validate_diag_doc(doc)

    def test_rejects_nan_total(self):
        doc = diagnose(make_rankprof(), make_rankprof()).to_dict()
        doc["total"]["new"] = math.nan
        with pytest.raises(ValueError, match=r"\$\.total\.new"):
            validate_diag_doc(doc)


class TestRender:
    def test_headline_and_evidence(self):
        report = diagnose(
            make_rankprof(), make_rankprof(bump={2: ("fault", 5e-5)}),
            "a.json", "b.json",
        )
        text = render_diag(report)
        assert "diagnosis [rankprof]: a.json -> b.json" in text
        assert "verdict:" in text
        assert "#1 [imbalance]" in text
        assert "(rank 2)" in text

    def test_top_truncation_note(self):
        bumps = {r: ("wire", (r + 1) * 1e-5) for r in range(3)}
        report = diagnose(make_rankprof(), make_rankprof(bump=bumps))
        # One finding per phase here, so force the note with top=0.
        text = render_diag(report, top=0)
        assert "more finding(s)" in text


class TestCLI:
    def test_diag_cli_writes_validated_json(self, tmp_path, capsys):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        out = tmp_path / "diag.json"
        old.write_text(json.dumps(make_rankprof()))
        new.write_text(json.dumps(make_rankprof(bump={2: ("fault", 5e-5)})))
        assert main([str(old), str(new), "--json", str(out)]) == 0
        doc = json.loads(out.read_text())
        assert validate_diag_doc(doc) >= 1
        assert doc["findings"][0]["cohort"] == [2]
        assert "diagnosis [rankprof]" in capsys.readouterr().out

    def test_repro_cli_dispatches_diag(self, tmp_path, capsys):
        from repro.cli import main as repro_main

        old = tmp_path / "old.json"
        old.write_text(json.dumps(make_rankprof()))
        assert repro_main(["diag", str(old), str(old)]) == 0
        assert "no significant deltas" in capsys.readouterr().out

    def test_missing_file_exits_2(self, tmp_path, capsys):
        there = tmp_path / "there.json"
        there.write_text(json.dumps(make_rankprof()))
        assert main([str(tmp_path / "gone.json"), str(there)]) == 2
        assert "diag:" in capsys.readouterr().err

    def test_mismatched_kinds_print_check_and_exit_1(self, tmp_path, capsys):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text(json.dumps(make_rankprof()))
        b.write_text(json.dumps({"traceEvents": []}))
        # Valid inputs failing the kind-match check: the failing check is
        # named and the exit code is 1 (2 stays reserved for IO/usage).
        assert main([str(a), str(b)]) == 1
        err = capsys.readouterr().err
        assert "FAILED kind-match" in err
        assert "cannot diag across kinds" in err
